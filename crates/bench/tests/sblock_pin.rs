//! Pins the Fig. 9 cycle accounting across superblock modes: the
//! deterministic view of a run must be bit-identical whether the machine
//! dispatches superblocks (default), steps every instruction
//! (`superblocks: false`), caps blocks short (`superblock_cap: 3`), or
//! degenerates to passthrough (`superblock_cap: 1` cannot reach the
//! two-instruction formation minimum) — and the same under trap-and-patch
//! and at a budget boundary. Block dispatch may only move host wall time,
//! never a deterministic stat, a guest output byte, or an exit reason.

use fpvm_arith::{BigFloatCtx, Vanilla};
use fpvm_bench::{run_hybrid, run_hybrid_with};
use fpvm_core::{ExitReason, Fpvm, FpvmConfig, Stats};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Fault, Machine, OutputEvent};
use fpvm_workloads::{fbench, lorenz, Size, Workload};

fn sb_off(cfg: FpvmConfig) -> FpvmConfig {
    FpvmConfig {
        superblocks: false,
        ..cfg
    }
}

fn sb_cap(cfg: FpvmConfig, cap: u32) -> FpvmConfig {
    FpvmConfig {
        superblock_cap: cap,
        ..cfg
    }
}

fn run_mode(w: &Workload, cfg: FpvmConfig) -> (Stats, Vec<OutputEvent>) {
    let (report, out, _) =
        run_hybrid_with(w, BigFloatCtx::new(200), CostModel::r815(), cfg, |_| {});
    (report.stats, out)
}

fn pin_workload(w: &Workload) {
    let (s_on, out_on) = run_mode(w, FpvmConfig::default());
    let base = s_on.deterministic_view();
    for (name, cfg) in [
        ("off", sb_off(FpvmConfig::default())),
        ("capped-3", sb_cap(FpvmConfig::default(), 3)),
        ("passthrough (cap 1)", sb_cap(FpvmConfig::default(), 1)),
    ] {
        let (s, out) = run_mode(w, cfg);
        assert_eq!(
            s.deterministic_view(),
            base,
            "{}: superblocks {name} moved a deterministic stat",
            w.name
        );
        assert_eq!(out, out_on, "{}: guest output diverged ({name})", w.name);
    }
}

#[test]
fn fig9_pinned_across_superblock_modes() {
    pin_workload(&fbench::workload(Size::Tiny));
    pin_workload(&lorenz::workload(Size::Tiny));
}

/// The same pin under trap-and-patch: the engine installs patches while
/// the guest runs, truncating superblocks at the patched sites — the
/// invalidate-and-re-form path must not move a deterministic stat.
#[test]
fn fig9_pinned_across_superblock_modes_with_patching() {
    let w = lorenz::workload(Size::Tiny);
    let tp = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let (on, out_on, _) = run_hybrid(&w, BigFloatCtx::new(200), CostModel::r815(), tp);
    let (off, out_off, _) = run_hybrid(&w, BigFloatCtx::new(200), CostModel::r815(), sb_off(tp));
    assert_eq!(
        off.stats.deterministic_view(),
        on.stats.deterministic_view()
    );
    assert_eq!(out_off, out_on);
    assert!(on.stats.sites_patched > 0, "patching must actually happen");
}

/// Budget-edge semantics through the engine: with `max_insts` clamped so
/// the budget boundary lands mid-run (and, with blocks on, mid-block),
/// the Budget fault must fire at the identical `icount`/`rip` with the
/// identical deterministic view in every superblock mode. (Raw `cycles`
/// includes host-measured emulate time, so the machine-level cycle
/// equality is pinned exactly in `fpvm_machine::block`'s own tests; here
/// we pin the deterministic accounting the engine reports.)
#[test]
fn budget_fault_identical_across_superblock_modes() {
    let w = lorenz::workload(Size::Tiny);
    let compiled = compile(&w.module, CompileMode::Native);
    // Measure the full run length once, then pick boundaries guaranteed
    // to land mid-run (and at odd offsets, so some fall mid-block).
    let total = {
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&compiled.program);
        let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
        let r = vm.run(&mut m);
        assert_eq!(r.exit, ExitReason::Halted);
        r.icount
    };
    for max_insts in [1u64, 7, 97, total / 3 + 1, total / 2 + 3, total - 1] {
        let run_mode = |cfg: FpvmConfig| {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&compiled.program);
            let mut vm = Fpvm::new(Vanilla, FpvmConfig { max_insts, ..cfg });
            let r = vm.run(&mut m);
            (
                r.exit,
                r.icount,
                r.fp_icount,
                r.stats.deterministic_view(),
                m.rip,
            )
        };
        let on = run_mode(FpvmConfig::default());
        assert_eq!(
            on.0,
            ExitReason::Fault(Fault::Budget),
            "max_insts {max_insts} must exhaust the budget"
        );
        assert_eq!(on.1, max_insts, "budget fires at exactly max_insts");
        for cfg in [
            sb_off(FpvmConfig::default()),
            sb_cap(FpvmConfig::default(), 3),
            sb_cap(FpvmConfig::default(), 1),
        ] {
            assert_eq!(run_mode(cfg), on, "max_insts {max_insts}");
        }
    }
}
