//! # fpvm-ir — a small typed IR and compiler targeting the simulated ISA
//!
//! The reproduction's stand-in for the paper's LLVM/gclang pipeline (§3.4,
//! Fig. 4): workloads are written against this IR's builder API and
//! compiled to [`fpvm_machine::Program`] images. Two things matter:
//!
//! 1. The **code generator is deliberately idiomatic**: negation compiles
//!    to `xorpd` with a sign mask, `fabs` to `andpd`, and bitcasts to
//!    FP-store-then-integer-load sequences — the exact compiler idioms that
//!    create the non-trapping holes §4.2's static analysis must find.
//! 2. A **compiler-based FPVM mode** ([`CompileMode::FpvmInstrumented`])
//!    replaces every FP operation with an inline-check patch site at build
//!    time — the IR-transformation approach of §3.4, with no hardware trap
//!    requirement and no binary analysis.
//!
//! The IR is intentionally un-SSA (mutable [`Var`]s like `-O0` clang
//! output): there are about a dozen FP-relevant operations, versus the
//! "hundreds of instructions" at ISA level — the 13-instruction LLVM
//! observation of §3.4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build_util;
pub mod codegen;

pub use codegen::{compile, CompileMode, CompiledProgram};

use std::collections::HashMap;

/// Value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit IEEE double.
    F64,
    /// 64-bit signed integer.
    I64,
}

/// A virtual register (single assignment by convention; slots in codegen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(pub(crate) u32);

/// A mutable local variable (stack slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) u32);

/// A basic block label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub(crate) u32);

/// A function handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub(crate) u32);

/// A global (data-segment) object handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub(crate) u32);

/// Floating point binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Comparison predicates (shared by int and FP compares; FP compares are
/// quiet and NaN-safe: any comparison with NaN is false except `Ne`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Math library functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MathFn {
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Atan2,
    Exp,
    Log,
    Log10,
    Pow,
    Floor,
    Ceil,
    Fabs,
}

/// One IR instruction.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum Inst {
    ConstF {
        dst: Value,
        v: f64,
    },
    ConstI {
        dst: Value,
        v: i64,
    },
    FBin {
        op: FBinOp,
        dst: Value,
        a: Value,
        b: Value,
    },
    FNeg {
        dst: Value,
        a: Value,
    },
    FAbs {
        dst: Value,
        a: Value,
    },
    FSqrt {
        dst: Value,
        a: Value,
    },
    FCmp {
        op: CmpOp,
        dst: Value,
        a: Value,
        b: Value,
    },
    IBin {
        op: IBinOp,
        dst: Value,
        a: Value,
        b: Value,
    },
    ICmp {
        op: CmpOp,
        dst: Value,
        a: Value,
        b: Value,
    },
    IToF {
        dst: Value,
        a: Value,
    },
    /// Truncating f64 → i64.
    FToI {
        dst: Value,
        a: Value,
    },
    /// Reinterpret f64 bits as i64 (compiles to the Fig. 6 idiom).
    BitcastFI {
        dst: Value,
        a: Value,
    },
    /// Reinterpret i64 bits as f64.
    BitcastIF {
        dst: Value,
        a: Value,
    },
    ReadVar {
        dst: Value,
        var: Var,
    },
    WriteVar {
        var: Var,
        v: Value,
    },
    /// Address of a global object.
    GlobalAddr {
        dst: Value,
        g: GlobalId,
    },
    /// Load f64 through a pointer (+ constant byte offset).
    LoadF {
        dst: Value,
        addr: Value,
        off: i64,
    },
    StoreF {
        addr: Value,
        off: i64,
        v: Value,
    },
    LoadI {
        dst: Value,
        addr: Value,
        off: i64,
    },
    StoreI {
        addr: Value,
        off: i64,
        v: Value,
    },
    CallMath {
        dst: Value,
        f: MathFn,
        args: Vec<Value>,
    },
    Call {
        dst: Option<Value>,
        f: FuncId,
        args: Vec<Value>,
    },
    /// Heap allocation (bytes) → pointer.
    Alloc {
        dst: Value,
        size: Value,
    },
    PrintF {
        v: Value,
    },
    PrintI {
        v: Value,
    },
    Br {
        target: BlockId,
    },
    CondBr {
        cond: Value,
        then_b: BlockId,
        else_b: BlockId,
    },
    Ret {
        v: Option<Value>,
    },
}

/// A function under construction / in a module.
#[derive(Debug, Clone)]
pub struct Func {
    /// Name (diagnostics).
    pub name: String,
    /// Parameter types (passed in registers; materialized into values).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Option<Ty>,
    pub(crate) blocks: Vec<Vec<Inst>>,
    pub(crate) value_tys: Vec<Ty>,
    pub(crate) var_tys: Vec<Ty>,
}

/// A global data object.
#[derive(Debug, Clone)]
pub enum GlobalInit {
    /// Zero-filled bytes.
    Zeroed(usize),
    /// f64 array.
    F64s(Vec<f64>),
    /// i64 array.
    I64s(Vec<i64>),
}

/// A whole program: functions + globals + a designated main.
#[derive(Debug, Clone, Default)]
pub struct Module {
    pub(crate) funcs: Vec<Func>,
    pub(crate) globals: Vec<(String, GlobalInit)>,
    pub(crate) main: Option<FuncId>,
    names: HashMap<String, FuncId>,
}

impl Module {
    /// Empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Declare a function and get a builder for it. The first function
    /// named "main" (or explicitly set via [`Module::set_main`]) is the
    /// entry point.
    pub fn build_func(
        &mut self,
        name: &str,
        params: &[Ty],
        ret: Option<Ty>,
        build: impl FnOnce(&mut FuncBuilder),
    ) -> FuncId {
        let id = self.declare(name, params, ret);
        self.define(id, build);
        id
    }

    /// Forward-declare a function (for recursion / call-before-define).
    pub fn declare(&mut self, name: &str, params: &[Ty], ret: Option<Ty>) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Func {
            name: name.to_string(),
            params: params.to_vec(),
            ret,
            blocks: vec![Vec::new()],
            value_tys: params.to_vec(),
            var_tys: Vec::new(),
        });
        self.names.insert(name.to_string(), id);
        if name == "main" && self.main.is_none() {
            self.main = Some(id);
        }
        id
    }

    /// Define a previously-declared function's body.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FuncBuilder)) {
        let mut fb = FuncBuilder {
            func: self.funcs[id.0 as usize].clone(),
            cur: BlockId(0),
        };
        build(&mut fb);
        self.funcs[id.0 as usize] = fb.func;
    }

    /// Add a global object.
    pub fn global(&mut self, name: &str, init: GlobalInit) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push((name.to_string(), init));
        id
    }

    /// Set the entry function.
    pub fn set_main(&mut self, f: FuncId) {
        self.main = Some(f);
    }

    /// Look up a function by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.names.get(name).copied()
    }

    /// Number of functions.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Count FP-relevant IR operations (the §3.4 observation: a handful of
    /// IR op kinds stand in for hundreds of ISA instructions).
    pub fn fp_op_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flatten())
            .filter(|i| {
                matches!(
                    i,
                    Inst::FBin { .. }
                        | Inst::FNeg { .. }
                        | Inst::FAbs { .. }
                        | Inst::FSqrt { .. }
                        | Inst::FCmp { .. }
                        | Inst::IToF { .. }
                        | Inst::FToI { .. }
                        | Inst::CallMath { .. }
                )
            })
            .count()
    }
}

/// Builder for one function. Parameters are values `0..params.len()`.
pub struct FuncBuilder {
    func: Func,
    cur: BlockId,
}

impl FuncBuilder {
    /// The `i`-th parameter as a value.
    pub fn param(&self, i: usize) -> Value {
        assert!(i < self.func.params.len());
        Value(i as u32)
    }

    fn fresh(&mut self, ty: Ty) -> Value {
        self.func.value_tys.push(ty);
        Value(self.func.value_tys.len() as u32 - 1)
    }

    fn push(&mut self, inst: Inst) {
        self.func.blocks[self.cur.0 as usize].push(inst);
    }

    /// Create a new (empty) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(Vec::new());
        BlockId(self.func.blocks.len() as u32 - 1)
    }

    /// Switch the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Declare a mutable local variable.
    pub fn var(&mut self, ty: Ty) -> Var {
        self.func.var_tys.push(ty);
        Var(self.func.var_tys.len() as u32 - 1)
    }

    /// Type of a value.
    pub fn ty(&self, v: Value) -> Ty {
        self.func.value_tys[v.0 as usize]
    }

    // ---- constants & vars --------------------------------------------------

    /// f64 constant.
    pub fn cf(&mut self, v: f64) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::ConstF { dst, v });
        dst
    }

    /// i64 constant.
    pub fn ci(&mut self, v: i64) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::ConstI { dst, v });
        dst
    }

    /// Read a variable.
    pub fn read(&mut self, var: Var) -> Value {
        let ty = self.func.var_tys[var.0 as usize];
        let dst = self.fresh(ty);
        self.push(Inst::ReadVar { dst, var });
        dst
    }

    /// Write a variable.
    pub fn write(&mut self, var: Var, v: Value) {
        debug_assert_eq!(self.func.var_tys[var.0 as usize], self.ty(v));
        self.push(Inst::WriteVar { var, v });
    }

    // ---- FP ------------------------------------------------------------------

    fn fbin(&mut self, op: FBinOp, a: Value, b: Value) -> Value {
        debug_assert_eq!(self.ty(a), Ty::F64);
        debug_assert_eq!(self.ty(b), Ty::F64);
        let dst = self.fresh(Ty::F64);
        self.push(Inst::FBin { op, dst, a, b });
        dst
    }

    /// a + b.
    pub fn fadd(&mut self, a: Value, b: Value) -> Value {
        self.fbin(FBinOp::Add, a, b)
    }
    /// a − b.
    pub fn fsub(&mut self, a: Value, b: Value) -> Value {
        self.fbin(FBinOp::Sub, a, b)
    }
    /// a × b.
    pub fn fmul(&mut self, a: Value, b: Value) -> Value {
        self.fbin(FBinOp::Mul, a, b)
    }
    /// a ÷ b.
    pub fn fdiv(&mut self, a: Value, b: Value) -> Value {
        self.fbin(FBinOp::Div, a, b)
    }
    /// min(a, b) (x64 semantics).
    pub fn fmin(&mut self, a: Value, b: Value) -> Value {
        self.fbin(FBinOp::Min, a, b)
    }
    /// max(a, b).
    pub fn fmax(&mut self, a: Value, b: Value) -> Value {
        self.fbin(FBinOp::Max, a, b)
    }
    /// −a (compiles to the `xorpd` idiom).
    pub fn fneg(&mut self, a: Value) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::FNeg { dst, a });
        dst
    }
    /// |a| (compiles to the `andpd` idiom).
    pub fn fabs(&mut self, a: Value) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::FAbs { dst, a });
        dst
    }
    /// √a.
    pub fn fsqrt(&mut self, a: Value) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::FSqrt { dst, a });
        dst
    }
    /// FP compare → 0/1.
    pub fn fcmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::FCmp { op, dst, a, b });
        dst
    }

    // ---- integer ----------------------------------------------------------------

    fn ibin(&mut self, op: IBinOp, a: Value, b: Value) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::IBin { op, dst, a, b });
        dst
    }

    /// a + b.
    pub fn iadd(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Add, a, b)
    }
    /// a − b.
    pub fn isub(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Sub, a, b)
    }
    /// a × b.
    pub fn imul(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Mul, a, b)
    }
    /// a ÷ b (signed).
    pub fn idiv(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Div, a, b)
    }
    /// a mod b.
    pub fn irem(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Rem, a, b)
    }
    /// a & b.
    pub fn iand(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::And, a, b)
    }
    /// a | b.
    pub fn ior(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Or, a, b)
    }
    /// a ^ b.
    pub fn ixor(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Xor, a, b)
    }
    /// a << b.
    pub fn ishl(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Shl, a, b)
    }
    /// a >> b (logical).
    pub fn ishr(&mut self, a: Value, b: Value) -> Value {
        self.ibin(IBinOp::Shr, a, b)
    }
    /// Integer compare → 0/1.
    pub fn icmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::ICmp { op, dst, a, b });
        dst
    }

    // ---- conversions & bitcasts -----------------------------------------------

    /// i64 → f64.
    pub fn itof(&mut self, a: Value) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::IToF { dst, a });
        dst
    }
    /// f64 → i64 (truncating).
    pub fn ftoi(&mut self, a: Value) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::FToI { dst, a });
        dst
    }
    /// Reinterpret f64 bits as i64 (the Fig. 6 pointer-punning idiom).
    pub fn bitcast_fi(&mut self, a: Value) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::BitcastFI { dst, a });
        dst
    }
    /// Reinterpret i64 bits as f64.
    pub fn bitcast_if(&mut self, a: Value) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::BitcastIF { dst, a });
        dst
    }

    // ---- memory ---------------------------------------------------------------

    /// Address of a global.
    pub fn global_addr(&mut self, g: GlobalId) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::GlobalAddr { dst, g });
        dst
    }
    /// Load f64 at `addr + off`.
    pub fn loadf(&mut self, addr: Value, off: i64) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::LoadF { dst, addr, off });
        dst
    }
    /// Store f64 at `addr + off`.
    pub fn storef(&mut self, addr: Value, off: i64, v: Value) {
        self.push(Inst::StoreF { addr, off, v });
    }
    /// Load i64 at `addr + off`.
    pub fn loadi(&mut self, addr: Value, off: i64) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::LoadI { dst, addr, off });
        dst
    }
    /// Store i64 at `addr + off`.
    pub fn storei(&mut self, addr: Value, off: i64, v: Value) {
        self.push(Inst::StoreI { addr, off, v });
    }
    /// Heap-allocate `size` bytes.
    pub fn alloc(&mut self, size: Value) -> Value {
        let dst = self.fresh(Ty::I64);
        self.push(Inst::Alloc { dst, size });
        dst
    }

    // ---- calls & io -------------------------------------------------------------

    /// Call a math-library function.
    pub fn math(&mut self, f: MathFn, args: &[Value]) -> Value {
        let dst = self.fresh(Ty::F64);
        self.push(Inst::CallMath {
            dst,
            f,
            args: args.to_vec(),
        });
        dst
    }
    /// Call another function.
    pub fn call(&mut self, f: FuncId, args: &[Value], ret: Option<Ty>) -> Option<Value> {
        let dst = ret.map(|t| self.fresh(t));
        self.push(Inst::Call {
            dst,
            f,
            args: args.to_vec(),
        });
        dst
    }
    /// printf("%.17g\n", v).
    pub fn printf(&mut self, v: Value) {
        self.push(Inst::PrintF { v });
    }
    /// printf("%ld\n", v).
    pub fn printi(&mut self, v: Value) {
        self.push(Inst::PrintI { v });
    }

    // ---- control flow -------------------------------------------------------------

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Inst::Br { target });
    }
    /// Conditional branch on a nonzero i64.
    pub fn cond_br(&mut self, cond: Value, then_b: BlockId, else_b: BlockId) {
        self.push(Inst::CondBr {
            cond,
            then_b,
            else_b,
        });
    }
    /// Return.
    pub fn ret(&mut self, v: Option<Value>) {
        self.push(Inst::Ret { v });
    }
}
