//! Convenience builders for common control-flow shapes.

use crate::{CmpOp, FuncBuilder, Ty, Value, Var};

/// Emit `for i in 0..n { body }`. The closure receives the builder and the
/// current induction value (freshly read each iteration). On return the
/// insertion point is the block after the loop.
pub fn loop_n(b: &mut FuncBuilder, n: i64, body: impl FnOnce(&mut FuncBuilder, Value)) {
    let i = b.var(Ty::I64);
    let z = b.ci(0);
    b.write(i, z);
    loop_var(b, i, n, body);
}

/// Emit `for i in 0..n` using a caller-provided induction variable (allows
/// reuse across sequential loops to keep frames small).
pub fn loop_var(b: &mut FuncBuilder, i: Var, n: i64, body: impl FnOnce(&mut FuncBuilder, Value)) {
    let z = b.ci(0);
    b.write(i, z);
    let header = b.new_block();
    let body_b = b.new_block();
    let after = b.new_block();
    b.br(header);
    b.switch_to(header);
    let iv = b.read(i);
    let nn = b.ci(n);
    let c = b.icmp(CmpOp::Lt, iv, nn);
    b.cond_br(c, body_b, after);
    b.switch_to(body_b);
    let iv = b.read(i);
    body(b, iv);
    let iv2 = b.read(i);
    let one = b.ci(1);
    let inext = b.iadd(iv2, one);
    b.write(i, inext);
    b.br(header);
    b.switch_to(after);
}

/// Emit `if cond { then }` (no else). Insertion continues after.
pub fn if_then(b: &mut FuncBuilder, cond: Value, then: impl FnOnce(&mut FuncBuilder)) {
    let t = b.new_block();
    let after = b.new_block();
    b.cond_br(cond, t, after);
    b.switch_to(t);
    then(b);
    b.br(after);
    b.switch_to(after);
}

/// Emit `if cond { a } else { b }`.
pub fn if_else(
    b: &mut FuncBuilder,
    cond: Value,
    then: impl FnOnce(&mut FuncBuilder),
    els: impl FnOnce(&mut FuncBuilder),
) {
    let t = b.new_block();
    let e = b.new_block();
    let after = b.new_block();
    b.cond_br(cond, t, e);
    b.switch_to(t);
    then(b);
    b.br(after);
    b.switch_to(e);
    els(b);
    b.br(after);
    b.switch_to(after);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileMode, Module};
    use fpvm_machine::{CostModel, Event, Machine, OutputEvent};

    fn run(m: &Module) -> Vec<OutputEvent> {
        let c = compile(m, CompileMode::Native);
        let mut mach = Machine::new(CostModel::r815());
        mach.load_program(&c.program);
        mach.hook_ext = false;
        mach.mxcsr.mask_all();
        assert_eq!(mach.run(1_000_000), Event::Halted);
        mach.output
    }

    #[test]
    fn loop_n_iterates_exactly_n_times() {
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let count = b.var(Ty::I64);
            let z = b.ci(0);
            b.write(count, z);
            loop_n(b, 7, |b, iv| {
                let c = b.read(count);
                let one = b.ci(1);
                let c2 = b.iadd(c, one);
                b.write(count, c2);
                // The induction value is visible and correct.
                b.printi(iv);
            });
            let c = b.read(count);
            b.printi(c);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(out.len(), 8);
        for (k, o) in out.iter().take(7).enumerate() {
            assert_eq!(*o, OutputEvent::I64(k as i64));
        }
        assert_eq!(out[7], OutputEvent::I64(7));
    }

    #[test]
    fn loop_n_zero_iterations() {
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            loop_n(b, 0, |b, _| {
                let x = b.ci(99);
                b.printi(x);
            });
            let done = b.ci(1);
            b.printi(done);
            b.ret(None);
        });
        assert_eq!(run(&m), vec![OutputEvent::I64(1)]);
    }

    #[test]
    fn if_then_and_if_else() {
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let t = b.ci(1);
            let f = b.ci(0);
            if_then(b, t, |b| {
                let x = b.ci(10);
                b.printi(x);
            });
            if_then(b, f, |b| {
                let x = b.ci(20);
                b.printi(x);
            });
            if_else(
                b,
                f,
                |b| {
                    let x = b.ci(30);
                    b.printi(x);
                },
                |b| {
                    let x = b.ci(40);
                    b.printi(x);
                },
            );
            b.ret(None);
        });
        assert_eq!(run(&m), vec![OutputEvent::I64(10), OutputEvent::I64(40)]);
    }

    #[test]
    fn nested_loops() {
        // Sum i*j over a 4x5 grid = (0+1+2+3)(0+1+2+3+4) = 6*10 = 60.
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let acc = b.var(Ty::I64);
            let z = b.ci(0);
            b.write(acc, z);
            loop_n(b, 4, |b, iv| {
                let iv_var = b.var(Ty::I64);
                b.write(iv_var, iv);
                loop_n(b, 5, |b, jv| {
                    let i = b.read(iv_var);
                    let p = b.imul(i, jv);
                    let a = b.read(acc);
                    let a2 = b.iadd(a, p);
                    b.write(acc, a2);
                });
            });
            let a = b.read(acc);
            b.printi(a);
            b.ret(None);
        });
        assert_eq!(run(&m), vec![OutputEvent::I64(60)]);
    }
}
