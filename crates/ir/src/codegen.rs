//! Code generation: IR → simulated-ISA program images.
//!
//! The generator is an unoptimizing (`-O0`-style) compiler: every value and
//! variable lives in a frame slot, operations load into `xmm0`/`rax`,
//! compute, and store back. This is deliberate — it produces exactly the
//! memory-heavy, idiom-rich binaries the paper's pipeline confronts:
//!
//! * `fneg` → `xorpd` with a ±sign-mask constant (non-trapping hole);
//! * `fabs` → `andpd` (hole);
//! * `bitcast` → FP store + integer load (the Fig. 6 pattern);
//! * math calls → `call_ext` (interposed by the runtime's shim).
//!
//! [`CompileMode::FpvmInstrumented`] implements the compiler-based approach
//! of §3.4: every FP operation site is emitted as a **patch call** (the
//! statically-inlined check + handler of Fig. 4) instead of a hardware
//! instruction, and the site table is handed to the runtime at load time —
//! no hardware trap support and no binary analysis required.

use crate::{CmpOp, FBinOp, Func, GlobalInit, IBinOp, Inst as Ir, MathFn, Module, Ty, Value, Var};
use fpvm_machine::{
    AluOp, Asm, Cond, ExtFn, Gpr, Inst as MInst, Label, Mem, Program, TrapKind, Width, Xmm, RM, XM,
};

/// Compilation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompileMode {
    /// Plain code generation (run natively, or under trap-and-emulate /
    /// static-analysis FPVM).
    #[default]
    Native,
    /// Compiler-based FPVM (§3.4): FP operations become patch-call sites.
    FpvmInstrumented,
}

/// A compiled program plus the patch-site table for instrumented builds.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The program image.
    pub program: Program,
    /// Patch sites `(id, original instruction, resume address)` to preload
    /// into the runtime (empty for [`CompileMode::Native`]).
    pub patch_sites: Vec<(u16, MInst, u64)>,
}

struct FnCg<'a> {
    asm: &'a mut Asm,
    nvals: usize,
    mode: CompileMode,
    patch_sites: &'a mut Vec<(u16, MInst, u64)>,
    fn_labels: &'a [Label],
    block_labels: Vec<Label>,
    global_addrs: &'a [u64],
    neg_mask: u64,
    abs_mask: u64,
}

const INT_ARGS: [Gpr; 6] = [Gpr::RDI, Gpr::RSI, Gpr::RDX, Gpr::RCX, Gpr::R8, Gpr::R9];

/// Compile a module.
pub fn compile(m: &Module, mode: CompileMode) -> CompiledProgram {
    let main = m.main.expect("module has no main function");
    let mut asm = Asm::new();
    // Constants used by the negation/abs idioms.
    let neg_mask = asm.u128c([0x8000_0000_0000_0000, 0x8000_0000_0000_0000]);
    let abs_mask = asm.u128c([0x7FFF_FFFF_FFFF_FFFF, 0x7FFF_FFFF_FFFF_FFFF]);
    // Globals.
    let global_addrs: Vec<u64> = m
        .globals
        .iter()
        .map(|(name, init)| match init {
            GlobalInit::Zeroed(n) => asm.global(name, *n),
            GlobalInit::F64s(v) => asm.f64_array(name, v),
            GlobalInit::I64s(v) => asm.i64_array(name, v),
        })
        .collect();
    // Entry stub: call main; halt.
    let fn_labels: Vec<Label> = (0..m.funcs.len()).map(|_| asm.label()).collect();
    asm.call(fn_labels[main.0 as usize]);
    asm.halt();
    let mut patch_sites = Vec::new();
    for (i, f) in m.funcs.iter().enumerate() {
        asm.bind(fn_labels[i]);
        let mut cg = FnCg {
            asm: &mut asm,
            nvals: f.value_tys.len(),
            mode,
            patch_sites: &mut patch_sites,
            fn_labels: &fn_labels,
            block_labels: Vec::new(),
            global_addrs: &global_addrs,
            neg_mask,
            abs_mask,
        };
        cg.emit_function(f);
    }
    CompiledProgram {
        program: asm.finish(),
        patch_sites,
    }
}

impl FnCg<'_> {
    fn vslot(&self, v: Value) -> Mem {
        Mem::base_disp(Gpr::RBP, -8 * (i64::from(v.0) + 1))
    }

    fn varslot(&self, v: Var) -> Mem {
        Mem::base_disp(Gpr::RBP, -8 * (self.nvals as i64 + i64::from(v.0) + 1))
    }

    #[allow(clippy::needless_range_loop)]
    fn emit_function(&mut self, f: &Func) {
        // Prologue.
        let frame = (8 * (f.value_tys.len() + f.var_tys.len() + 2) as i64) & !15;
        self.asm.push(Gpr::RBP);
        self.asm.mov_rr(Gpr::RBP, Gpr::RSP);
        self.asm.alu_ri(AluOp::Sub, Gpr::RSP, frame);
        // Spill incoming arguments to their value slots.
        let (mut ints, mut fps) = (0usize, 0usize);
        for (i, ty) in f.params.iter().enumerate() {
            let slot = self.vslot(Value(i as u32));
            match ty {
                Ty::I64 => {
                    self.asm.store(slot, INT_ARGS[ints]);
                    ints += 1;
                }
                Ty::F64 => {
                    self.asm.movsd(slot, Xmm(fps as u8));
                    fps += 1;
                }
            }
        }
        // Block labels.
        self.block_labels = (0..f.blocks.len()).map(|_| self.asm.label()).collect();
        for (bi, block) in f.blocks.iter().enumerate() {
            let l = self.block_labels[bi];
            self.asm.bind(l);
            for inst in block {
                self.emit_inst(f, inst);
            }
        }
    }

    fn epilogue_ret(&mut self) {
        self.asm.mov_rr(Gpr::RSP, Gpr::RBP);
        self.asm.pop(Gpr::RBP);
        self.asm.ret();
    }

    /// Emit an FP operation that writes `xmm0`: either the hardware
    /// instruction, or (instrumented mode) a patch-call site.
    fn fp_op(&mut self, inst: MInst) {
        match self.mode {
            CompileMode::Native => self.asm.emit(inst),
            CompileMode::FpvmInstrumented => {
                let id = self.patch_sites.len() as u16;
                self.asm.emit(MInst::Trap {
                    kind: TrapKind::PatchCall,
                    id,
                });
                let next = self.asm.here();
                self.patch_sites.push((id, inst, next));
            }
        }
    }

    /// Emit an integer load that may observe FP bit patterns: a plain load
    /// in native mode, a patch-call demote site in instrumented mode (the
    /// §3.4 pass covers the holes without any binary analysis).
    fn int_load(&mut self, dst: Gpr, addr: Mem) {
        let inst = MInst::Load {
            dst,
            addr,
            w: Width::W64,
        };
        match self.mode {
            CompileMode::Native => self.asm.emit(inst),
            CompileMode::FpvmInstrumented => {
                let id = self.patch_sites.len() as u16;
                self.asm.emit(MInst::Trap {
                    kind: TrapKind::PatchCall,
                    id,
                });
                let next = self.asm.here();
                self.patch_sites.push((id, inst, next));
            }
        }
    }

    fn emit_inst(&mut self, f: &Func, inst: &Ir) {
        let x0 = Xmm(0);
        let x1 = Xmm(1);
        match inst {
            Ir::ConstF { dst, v } => {
                let c = self.asm.f64m(*v);
                self.asm.movsd(x0, c);
                let d = self.vslot(*dst);
                self.asm.movsd(d, x0);
            }
            Ir::ConstI { dst, v } => {
                self.asm.mov_ri(Gpr::RAX, *v);
                let d = self.vslot(*dst);
                self.asm.store(d, Gpr::RAX);
            }
            Ir::FBin { op, dst, a, b } => {
                let (sa, sb, sd) = (self.vslot(*a), self.vslot(*b), self.vslot(*dst));
                self.asm.movsd(x0, sa);
                let m = match op {
                    FBinOp::Add => MInst::AddSd {
                        dst: x0,
                        src: XM::Mem(sb),
                    },
                    FBinOp::Sub => MInst::SubSd {
                        dst: x0,
                        src: XM::Mem(sb),
                    },
                    FBinOp::Mul => MInst::MulSd {
                        dst: x0,
                        src: XM::Mem(sb),
                    },
                    FBinOp::Div => MInst::DivSd {
                        dst: x0,
                        src: XM::Mem(sb),
                    },
                    FBinOp::Min => MInst::MinSd {
                        dst: x0,
                        src: XM::Mem(sb),
                    },
                    FBinOp::Max => MInst::MaxSd {
                        dst: x0,
                        src: XM::Mem(sb),
                    },
                };
                self.fp_op(m);
                self.asm.movsd(sd, x0);
            }
            Ir::FNeg { dst, a } => {
                let (sa, sd) = (self.vslot(*a), self.vslot(*dst));
                self.asm.movsd(x0, sa);
                self.fp_op(MInst::XorPd {
                    dst: x0,
                    src: XM::Mem(Mem::abs(self.neg_mask as i64)),
                });
                self.asm.movsd(sd, x0);
            }
            Ir::FAbs { dst, a } => {
                let (sa, sd) = (self.vslot(*a), self.vslot(*dst));
                self.asm.movsd(x0, sa);
                self.fp_op(MInst::AndPd {
                    dst: x0,
                    src: XM::Mem(Mem::abs(self.abs_mask as i64)),
                });
                self.asm.movsd(sd, x0);
            }
            Ir::FSqrt { dst, a } => {
                let (sa, sd) = (self.vslot(*a), self.vslot(*dst));
                self.fp_op(MInst::SqrtSd {
                    dst: x0,
                    src: XM::Mem(sa),
                });
                self.asm.movsd(sd, x0);
            }
            Ir::FCmp { op, dst, a, b } => {
                let (sa, sb, sd) = (self.vslot(*a), self.vslot(*b), self.vslot(*dst));
                // NaN-safe: compile Lt/Le as reversed Gt/Ge so unordered
                // compares produce false (the standard compiler trick).
                let (lhs, rhs, cond) = match op {
                    CmpOp::Lt => (sb, sa, Cond::A),
                    CmpOp::Le => (sb, sa, Cond::Ae),
                    CmpOp::Gt => (sa, sb, Cond::A),
                    CmpOp::Ge => (sa, sb, Cond::Ae),
                    CmpOp::Eq | CmpOp::Ne => (sa, sb, Cond::E),
                };
                self.asm.movsd(x0, lhs);
                self.fp_op(MInst::UComISd {
                    a: x0,
                    b: XM::Mem(rhs),
                });
                match op {
                    CmpOp::Eq => {
                        let end = self.asm.label();
                        self.asm.mov_ri(Gpr::RAX, 0);
                        self.asm.jcc(Cond::P, end);
                        self.asm.jcc(Cond::Ne, end);
                        self.asm.mov_ri(Gpr::RAX, 1);
                        self.asm.bind(end);
                    }
                    CmpOp::Ne => {
                        let end = self.asm.label();
                        self.asm.mov_ri(Gpr::RAX, 1);
                        self.asm.jcc(Cond::P, end);
                        self.asm.jcc(Cond::Ne, end);
                        self.asm.mov_ri(Gpr::RAX, 0);
                        self.asm.bind(end);
                    }
                    _ => {
                        let end = self.asm.label();
                        self.asm.mov_ri(Gpr::RAX, 1);
                        self.asm.jcc(cond, end);
                        self.asm.mov_ri(Gpr::RAX, 0);
                        self.asm.bind(end);
                    }
                }
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::IBin { op, dst, a, b } => {
                let (sa, sb, sd) = (self.vslot(*a), self.vslot(*b), self.vslot(*dst));
                self.asm.load(Gpr::RAX, sa);
                self.asm.load(Gpr::RCX, sb);
                match op {
                    IBinOp::Add => self.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX),
                    IBinOp::Sub => self.asm.alu_rr(AluOp::Sub, Gpr::RAX, Gpr::RCX),
                    IBinOp::Mul => self.asm.alu_rr(AluOp::IMul, Gpr::RAX, Gpr::RCX),
                    IBinOp::Div => self.asm.emit(MInst::DivR {
                        dst: Gpr::RAX,
                        src: Gpr::RCX,
                    }),
                    IBinOp::Rem => self.asm.emit(MInst::RemR {
                        dst: Gpr::RAX,
                        src: Gpr::RCX,
                    }),
                    IBinOp::And => self.asm.alu_rr(AluOp::And, Gpr::RAX, Gpr::RCX),
                    IBinOp::Or => self.asm.alu_rr(AluOp::Or, Gpr::RAX, Gpr::RCX),
                    IBinOp::Xor => self.asm.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RCX),
                    IBinOp::Shl => self.asm.alu_rr(AluOp::Shl, Gpr::RAX, Gpr::RCX),
                    IBinOp::Shr => self.asm.alu_rr(AluOp::Shr, Gpr::RAX, Gpr::RCX),
                }
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::ICmp { op, dst, a, b } => {
                let (sa, sb, sd) = (self.vslot(*a), self.vslot(*b), self.vslot(*dst));
                self.asm.load(Gpr::RAX, sa);
                self.asm.load(Gpr::RCX, sb);
                self.asm.cmp_rr(Gpr::RAX, Gpr::RCX);
                let cond = match op {
                    CmpOp::Eq => Cond::E,
                    CmpOp::Ne => Cond::Ne,
                    CmpOp::Lt => Cond::L,
                    CmpOp::Le => Cond::Le,
                    CmpOp::Gt => Cond::G,
                    CmpOp::Ge => Cond::Ge,
                };
                let end = self.asm.label();
                self.asm.mov_ri(Gpr::RAX, 1);
                self.asm.jcc(cond, end);
                self.asm.mov_ri(Gpr::RAX, 0);
                self.asm.bind(end);
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::IToF { dst, a } => {
                let (sa, sd) = (self.vslot(*a), self.vslot(*dst));
                self.asm.load(Gpr::RAX, sa);
                self.fp_op(MInst::CvtSi2Sd {
                    dst: x0,
                    src: RM::Reg(Gpr::RAX),
                    w: Width::W64,
                });
                self.asm.movsd(sd, x0);
            }
            Ir::FToI { dst, a } => {
                let (sa, sd) = (self.vslot(*a), self.vslot(*dst));
                self.fp_op(MInst::CvtTSd2Si {
                    dst: Gpr::RAX,
                    src: XM::Mem(sa),
                    w: Width::W64,
                });
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::BitcastFI { dst, a } => {
                // The Fig. 6 idiom: integer load of an FP-written slot. The
                // compiler-based pass knows this is a punning load and
                // instruments it (the binary approaches need VSA to find it).
                let (sa, sd) = (self.vslot(*a), self.vslot(*dst));
                self.int_load(Gpr::RAX, sa);
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::BitcastIF { dst, a } => {
                let (sa, sd) = (self.vslot(*a), self.vslot(*dst));
                self.asm.load(Gpr::RAX, sa);
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::ReadVar { dst, var } => {
                let (sv, sd) = (self.varslot(*var), self.vslot(*dst));
                match f.var_tys[var.0 as usize] {
                    Ty::F64 => {
                        self.asm.movsd(x0, sv);
                        self.asm.movsd(sd, x0);
                    }
                    Ty::I64 => {
                        self.asm.load(Gpr::RAX, sv);
                        self.asm.store(sd, Gpr::RAX);
                    }
                }
            }
            Ir::WriteVar { var, v } => {
                let (sv, s) = (self.varslot(*var), self.vslot(*v));
                match f.var_tys[var.0 as usize] {
                    Ty::F64 => {
                        self.asm.movsd(x0, s);
                        self.asm.movsd(sv, x0);
                    }
                    Ty::I64 => {
                        self.asm.load(Gpr::RAX, s);
                        self.asm.store(sv, Gpr::RAX);
                    }
                }
            }
            Ir::GlobalAddr { dst, g } => {
                let sd = self.vslot(*dst);
                self.asm
                    .mov_ri(Gpr::RAX, self.global_addrs[g.0 as usize] as i64);
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::LoadF { dst, addr, off } => {
                let (sp, sd) = (self.vslot(*addr), self.vslot(*dst));
                self.asm.load(Gpr::RCX, sp);
                self.asm.movsd(x0, Mem::base_disp(Gpr::RCX, *off));
                self.asm.movsd(sd, x0);
            }
            Ir::StoreF { addr, off, v } => {
                let (sp, sv) = (self.vslot(*addr), self.vslot(*v));
                self.asm.load(Gpr::RCX, sp);
                self.asm.movsd(x0, sv);
                self.asm.movsd(Mem::base_disp(Gpr::RCX, *off), x0);
            }
            Ir::LoadI { dst, addr, off } => {
                let (sp, sd) = (self.vslot(*addr), self.vslot(*dst));
                self.asm.load(Gpr::RCX, sp);
                // Through-pointer integer loads may observe FP memory; the
                // compiler-based pass instruments them like bitcasts.
                self.int_load(Gpr::RAX, Mem::base_disp(Gpr::RCX, *off));
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::StoreI { addr, off, v } => {
                let (sp, sv) = (self.vslot(*addr), self.vslot(*v));
                self.asm.load(Gpr::RCX, sp);
                self.asm.load(Gpr::RAX, sv);
                self.asm.store(Mem::base_disp(Gpr::RCX, *off), Gpr::RAX);
            }
            Ir::CallMath { dst, f: mf, args } => {
                for (i, a) in args.iter().enumerate() {
                    let s = self.vslot(*a);
                    self.asm.movsd(Xmm(i as u8), s);
                }
                self.asm.call_ext(math_ext(*mf));
                let sd = self.vslot(*dst);
                self.asm.movsd(sd, x0);
            }
            Ir::Call {
                dst,
                f: callee,
                args,
            } => {
                // Load arguments into registers per the convention.
                let (mut ints, mut fps) = (0usize, 0usize);
                // NOTE: argument types come from the *values'* types in this
                // function.
                for a in args {
                    let s = self.vslot(*a);
                    match f.value_tys[a.0 as usize] {
                        Ty::I64 => {
                            self.asm.load(INT_ARGS[ints], s);
                            ints += 1;
                        }
                        Ty::F64 => {
                            self.asm.movsd(Xmm(fps as u8), s);
                            fps += 1;
                        }
                    }
                }
                self.asm.call(self.fn_labels[callee.0 as usize]);
                if let Some(d) = dst {
                    let sd = self.vslot(*d);
                    match f.value_tys[d.0 as usize] {
                        Ty::F64 => self.asm.movsd(sd, x0),
                        Ty::I64 => self.asm.store(sd, Gpr::RAX),
                    }
                }
            }
            Ir::Alloc { dst, size } => {
                let (ss, sd) = (self.vslot(*size), self.vslot(*dst));
                self.asm.load(Gpr::RDI, ss);
                self.asm.call_ext(ExtFn::AllocHeap);
                self.asm.store(sd, Gpr::RAX);
            }
            Ir::PrintF { v } => {
                let s = self.vslot(*v);
                self.asm.movsd(x0, s);
                self.asm.call_ext(ExtFn::PrintF64);
            }
            Ir::PrintI { v } => {
                let s = self.vslot(*v);
                self.asm.load(Gpr::RDI, s);
                self.asm.call_ext(ExtFn::PrintI64);
            }
            Ir::Br { target } => {
                let l = self.block_labels[target.0 as usize];
                self.asm.jmp(l);
            }
            Ir::CondBr {
                cond,
                then_b,
                else_b,
            } => {
                let s = self.vslot(*cond);
                self.asm.load(Gpr::RAX, s);
                self.asm.test_rr(Gpr::RAX, Gpr::RAX);
                let lt = self.block_labels[then_b.0 as usize];
                let le = self.block_labels[else_b.0 as usize];
                self.asm.jcc(Cond::Ne, lt);
                self.asm.jmp(le);
            }
            Ir::Ret { v } => {
                if let Some(v) = v {
                    let s = self.vslot(*v);
                    match f.value_tys[v.0 as usize] {
                        Ty::F64 => self.asm.movsd(x0, s),
                        Ty::I64 => self.asm.load(Gpr::RAX, s),
                    }
                }
                self.epilogue_ret();
            }
        }
        let _ = x1;
    }
}

fn math_ext(f: MathFn) -> ExtFn {
    match f {
        MathFn::Sin => ExtFn::Sin,
        MathFn::Cos => ExtFn::Cos,
        MathFn::Tan => ExtFn::Tan,
        MathFn::Asin => ExtFn::Asin,
        MathFn::Acos => ExtFn::Acos,
        MathFn::Atan => ExtFn::Atan,
        MathFn::Atan2 => ExtFn::Atan2,
        MathFn::Exp => ExtFn::Exp,
        MathFn::Log => ExtFn::Log,
        MathFn::Log10 => ExtFn::Log10,
        MathFn::Pow => ExtFn::Pow,
        MathFn::Floor => ExtFn::Floor,
        MathFn::Ceil => ExtFn::Ceil,
        MathFn::Fabs => ExtFn::Fabs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_machine::{CostModel, Event, Machine, OutputEvent};

    fn run(m: &Module) -> Vec<OutputEvent> {
        let c = compile(m, CompileMode::Native);
        let mut mach = Machine::new(CostModel::r815());
        mach.load_program(&c.program);
        mach.hook_ext = false;
        mach.mxcsr.mask_all();
        let ev = mach.run(10_000_000);
        assert_eq!(ev, Event::Halted, "{ev:?}");
        mach.output
    }

    fn outf(o: &OutputEvent) -> f64 {
        match o {
            OutputEvent::F64(b) => f64::from_bits(*b),
            _ => panic!("expected f64"),
        }
    }

    #[test]
    fn arithmetic_and_print() {
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let x = b.cf(1.5);
            let y = b.cf(2.25);
            let s = b.fadd(x, y);
            let p = b.fmul(s, y);
            b.printf(p);
            let n = b.fneg(p);
            b.printf(n);
            let abs = b.fabs(n);
            b.printf(abs);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(outf(&out[0]), 3.75 * 2.25);
        assert_eq!(outf(&out[1]), -3.75 * 2.25);
        assert_eq!(outf(&out[2]), 3.75 * 2.25);
    }

    #[test]
    fn loops_and_vars() {
        // Sum of i*0.5 for i in 0..10.
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let acc = b.var(Ty::F64);
            let i = b.var(Ty::I64);
            let zero_f = b.cf(0.0);
            let zero_i = b.ci(0);
            b.write(acc, zero_f);
            b.write(i, zero_i);
            let header = b.new_block();
            let body = b.new_block();
            let exit = b.new_block();
            b.br(header);
            b.switch_to(header);
            let iv = b.read(i);
            let ten = b.ci(10);
            let c = b.icmp(CmpOp::Lt, iv, ten);
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let iv2 = b.read(i);
            let f = b.itof(iv2);
            let half = b.cf(0.5);
            let term = b.fmul(f, half);
            let a = b.read(acc);
            let a2 = b.fadd(a, term);
            b.write(acc, a2);
            let one = b.ci(1);
            let inext = b.iadd(iv2, one);
            b.write(i, inext);
            b.br(header);
            b.switch_to(exit);
            let result = b.read(acc);
            b.printf(result);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(outf(&out[0]), 22.5);
    }

    #[test]
    fn function_calls_with_mixed_args() {
        // f(x, n, y) = x * y + n as f64
        let mut m = Module::new();
        let f = m.build_func("f", &[Ty::F64, Ty::I64, Ty::F64], Some(Ty::F64), |b| {
            let x = b.param(0);
            let n = b.param(1);
            let y = b.param(2);
            let p = b.fmul(x, y);
            let nf = b.itof(n);
            let r = b.fadd(p, nf);
            b.ret(Some(r));
        });
        m.build_func("main", &[], None, |b| {
            let x = b.cf(3.0);
            let n = b.ci(7);
            let y = b.cf(0.5);
            let r = b.call(f, &[x, n, y], Some(Ty::F64)).unwrap();
            b.printf(r);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(outf(&out[0]), 8.5);
    }

    #[test]
    fn recursion() {
        let mut m = Module::new();
        let fac = m.declare("fact", &[Ty::I64], Some(Ty::I64));
        m.define(fac, |b| {
            let n = b.param(0);
            let one = b.ci(1);
            let base = b.new_block();
            let rec = b.new_block();
            let c = b.icmp(CmpOp::Le, n, one);
            b.cond_br(c, base, rec);
            b.switch_to(base);
            let one2 = b.ci(1);
            b.ret(Some(one2));
            b.switch_to(rec);
            let one3 = b.ci(1);
            let nm1 = b.isub(n, one3);
            let sub = b.call(fac, &[nm1], Some(Ty::I64)).unwrap();
            let r = b.imul(n, sub);
            b.ret(Some(r));
        });
        m.build_func("main", &[], None, |b| {
            let n = b.ci(10);
            let r = b.call(fac, &[n], Some(Ty::I64)).unwrap();
            b.printi(r);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(out[0], OutputEvent::I64(3628800));
    }

    #[test]
    fn globals_heap_and_memory() {
        let mut m = Module::new();
        let table = m.global("table", GlobalInit::F64s(vec![1.0, 2.0, 3.0]));
        m.build_func("main", &[], None, |b| {
            // Sum the global table into a heap cell, print.
            let size = b.ci(8);
            let cell = b.alloc(size);
            let zero = b.cf(0.0);
            b.storef(cell, 0, zero);
            let base = b.global_addr(table);
            for k in 0..3 {
                let x = b.loadf(base, 8 * k);
                let acc = b.loadf(cell, 0);
                let s = b.fadd(acc, x);
                b.storef(cell, 0, s);
            }
            let r = b.loadf(cell, 0);
            b.printf(r);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(outf(&out[0]), 6.0);
    }

    #[test]
    fn math_calls_and_cmp() {
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let x = b.cf(0.5);
            let s = b.math(MathFn::Sin, &[x]);
            b.printf(s);
            let y = b.cf(2.0);
            let p = b.math(MathFn::Pow, &[y, y]);
            b.printf(p);
            // fcmp: sin(0.5) < 1.0 ?
            let one = b.cf(1.0);
            let c = b.fcmp(CmpOp::Lt, s, one);
            b.printi(c);
            let c2 = b.fcmp(CmpOp::Ge, s, one);
            b.printi(c2);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(outf(&out[0]), 0.5f64.sin());
        assert_eq!(outf(&out[1]), 4.0);
        assert_eq!(out[2], OutputEvent::I64(1));
        assert_eq!(out[3], OutputEvent::I64(0));
    }

    #[test]
    fn bitcast_idiom() {
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let x = b.cf(1.0);
            let bits = b.bitcast_fi(x);
            b.printi(bits);
            let back = b.bitcast_if(bits);
            b.printf(back);
            b.ret(None);
        });
        let out = run(&m);
        assert_eq!(out[0], OutputEvent::I64(1.0f64.to_bits() as i64));
        assert_eq!(outf(&out[1]), 1.0);
    }

    #[test]
    fn nan_safe_compares() {
        let mut m = Module::new();
        m.build_func("main", &[], None, |b| {
            let zero = b.cf(0.0);
            let nan = b.fdiv(zero, zero);
            let one = b.cf(1.0);
            for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq] {
                let c = b.fcmp(op, nan, one);
                b.printi(c);
            }
            let ne = b.fcmp(CmpOp::Ne, nan, one);
            b.printi(ne);
            b.ret(None);
        });
        let out = run(&m);
        for (i, o) in out.iter().take(5).enumerate() {
            assert_eq!(*o, OutputEvent::I64(0), "cmp {i} with NaN is false");
        }
        assert_eq!(out[5], OutputEvent::I64(1), "Ne with NaN is true");
    }
}
