//! IEEE 754 double-precision operations with **exact exception-flag
//! computation**, mirroring x64 SSE2 semantics.
//!
//! This module is the "hardware FPU" of the reproduction: the simulated
//! machine uses it to execute floating point instructions and decide, per
//! `%mxcsr`, whether an unmasked exception must fault (FPVM §4.1), and the
//! Vanilla arithmetic system (§4.3) delegates to it so that FPVM-under-Vanilla
//! is bit-identical to native execution (§5.2 validation).
//!
//! Flag detection uses error-free transformations: Knuth two-sum for
//! addition, `fma`-based residuals for multiplication, division and square
//! root. These are exact — `inexact` is reported iff the rounded result
//! differs from the infinitely-precise result.
//!
//! One documented simplification: x64 signals *unmasked* underflow on
//! tininess alone, while the masked flag requires tiny-and-inexact. We use
//! tiny-and-inexact for both, which means an operation whose result is an
//! *exact* subnormal executes natively instead of trapping. That is harmless
//! for FPVM: no precision was lost, so there is nothing to promote.

use crate::flags::FpFlags;

/// x64 "QNaN floating-point indefinite" — the default NaN the hardware
/// fabricates for invalid operations (0/0, ∞−∞, √−1, …).
pub const QNAN_INDEFINITE: u64 = 0xFFF8_0000_0000_0000;

/// Quiet-NaN bit of an `f64`.
const QUIET_BIT: u64 = 0x0008_0000_0000_0000;

/// True if `x` is a signaling NaN.
#[inline]
pub fn is_snan(x: f64) -> bool {
    x.is_nan() && x.to_bits() & QUIET_BIT == 0
}

/// Quiet a NaN by setting its quiet bit (x64 behavior when an sNaN
/// propagates through an instruction whose invalid exception is masked).
#[inline]
pub fn quiet(x: f64) -> f64 {
    if x.is_nan() {
        f64::from_bits(x.to_bits() | QUIET_BIT)
    } else {
        x
    }
}

/// Denormal-operand flag for a set of inputs (x64 `DE`).
#[inline]
fn denormal_in(inputs: &[f64]) -> FpFlags {
    if inputs.iter().any(|x| x.is_subnormal()) {
        FpFlags::DENORMAL
    } else {
        FpFlags::NONE
    }
}

/// NaN propagation for two-operand SSE instructions: if the first source is
/// a NaN it is returned (quieted), otherwise the second. `IE` iff either is
/// signaling.
#[inline]
fn propagate_nan2(a: f64, b: f64) -> (f64, FpFlags) {
    let flags = if is_snan(a) || is_snan(b) {
        FpFlags::INVALID
    } else {
        FpFlags::NONE
    };
    let v = if a.is_nan() { quiet(a) } else { quiet(b) };
    (v, flags)
}

/// Tiny-and-inexact underflow check on a rounded finite result.
///
/// Judging tininess from the *delivered* result is exact except at one
/// boundary: a tiny value can round up (at subnormal precision) to exactly
/// ±2^-1022, a normal result, while the IEEE/x64 masked rule judges it on
/// the rounding with unbounded exponent — still tiny, so UNDERFLOW.
/// For `add` that boundary is unreachable (exact sums of two f64s are
/// multiples of 2^-1074, and no such multiple lies strictly between the
/// largest subnormal and 2^-1022), so this test is exact there. `mul` and
/// `div` use [`tiny_scaled`] instead; `fma` keeps this test as part of its
/// documented conservative flag detection.
#[inline]
fn underflow_of(result: f64, inexact: bool) -> FpFlags {
    if inexact && (result == 0.0 || result.is_subnormal()) {
        FpFlags::UNDERFLOW
    } else {
        FpFlags::NONE
    }
}

/// After-rounding tininess for a normalized product or quotient: `m` is the
/// 53-bit-rounded mantissa with `|m| ∈ [0.25, 2)` and the true result is
/// `m × 2^scale` before any exponent clamping — i.e. exactly the "rounded
/// with unbounded exponent" value the masked-x64 rule inspects. It lies in
/// `[2^(E−1), 2^E)` for `E = frexp(m).1 + scale`, so tininess (< 2^-1022)
/// is an exponent test.
#[inline]
fn tiny_scaled(m: f64, scale: i32) -> bool {
    let (_, em) = frexp(m);
    em + scale <= -1022
}

/// Knuth two-sum: returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
/// exactly, provided no intermediate overflows (guaranteed when `s` is
/// finite).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free product: returns `(p, e)` with `p = fl(a * b)` and
/// `a * b = p + e` exactly (requires `p` finite; uses hardware/libm fma).
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

/// `a + b` with exact flags (x64 `addsd`).
pub fn add(a: f64, b: f64) -> (f64, FpFlags) {
    let mut flags = denormal_in(&[a, b]);
    if a.is_nan() || b.is_nan() {
        let (v, f) = propagate_nan2(a, b);
        return (v, flags | f);
    }
    if a.is_infinite() && b.is_infinite() && a.signum() != b.signum() {
        return (f64::from_bits(QNAN_INDEFINITE), flags | FpFlags::INVALID);
    }
    let s = a + b;
    if s.is_infinite() && a.is_finite() && b.is_finite() {
        return (s, flags | FpFlags::OVERFLOW | FpFlags::INEXACT);
    }
    if a.is_infinite() || b.is_infinite() {
        return (s, flags);
    }
    let (_, e) = two_sum(a, b);
    if e != 0.0 {
        flags |= FpFlags::INEXACT;
        flags |= underflow_of(s, true);
    }
    (s, flags)
}

/// `a - b` with exact flags (x64 `subsd`).
pub fn sub(a: f64, b: f64) -> (f64, FpFlags) {
    if b.is_nan() {
        // Preserve operand-order NaN propagation: subsd propagates src1 NaN
        // first; negating b would corrupt a propagated NaN payload.
        let mut flags = denormal_in(&[a, b]);
        let (v, f) = propagate_nan2(a, b);
        flags |= f;
        return (v, flags);
    }
    add(a, -b)
}

/// `a * b` with exact flags (x64 `mulsd`).
pub fn mul(a: f64, b: f64) -> (f64, FpFlags) {
    let mut flags = denormal_in(&[a, b]);
    if a.is_nan() || b.is_nan() {
        let (v, f) = propagate_nan2(a, b);
        return (v, flags | f);
    }
    // 0 * inf is invalid.
    if (a == 0.0 && b.is_infinite()) || (b == 0.0 && a.is_infinite()) {
        return (f64::from_bits(QNAN_INDEFINITE), flags | FpFlags::INVALID);
    }
    let p = a * b;
    if p.is_infinite() && a.is_finite() && b.is_finite() {
        return (p, flags | FpFlags::OVERFLOW | FpFlags::INEXACT);
    }
    if a.is_infinite() || b.is_infinite() {
        return (p, flags);
    }
    if a == 0.0 || b == 0.0 {
        return (p, flags); // correctly-signed zero, always exact
    }
    // Exactness via the residual in *normalized* space: the naive residual
    // fma(a, b, -p) itself underflows to zero for deeply tiny products,
    // silently hiding inexactness. Normalizing both operands to [0.5, 1)
    // keeps the residual representable, and double-rounding on the way back
    // down is caught by rescaling the result.
    let (ma, ea) = frexp(a);
    let (mb, eb) = frexp(b);
    let pm = ma * mb; // in [0.25, 1): always exact exponent range
    let e = ma.mul_add(mb, -pm);
    let scale_back_exact = p != 0.0 && ldexp_exact_eq(p, -(ea + eb), pm, e);
    if e != 0.0 || !scale_back_exact {
        flags |= FpFlags::INEXACT;
        if tiny_scaled(pm, ea + eb) {
            flags |= FpFlags::UNDERFLOW;
        }
    }
    (p, flags)
}

/// Decompose a finite nonzero f64 into `(m, e)` with `m ∈ [0.5, 1)` and
/// `x = m × 2^e` exactly. Returns `(0, 0)` for zero.
fn frexp(x: f64) -> (f64, i32) {
    if x == 0.0 {
        return (x, 0);
    }
    let bits = x.to_bits();
    let biased = ((bits >> 52) & 0x7FF) as i32;
    if biased == 0 {
        // Subnormal: scale up first (exact).
        let scaled = x * 2f64.powi(64);
        let (m, e) = frexp(scaled);
        return (m, e - 64);
    }
    let e = biased - 1022;
    let m = f64::from_bits((bits & !0x7FF0_0000_0000_0000) | (1022u64 << 52));
    (m, e)
}

/// Check that `x × 2^shift == target` exactly. `target` is in the normal
/// range and within a factor of two of `x × 2^shift`, so every intermediate
/// of the chunked scaling stays finite and the scaling itself is exact.
fn ldexp_exact_eq(x: f64, shift: i32, target: f64, err: f64) -> bool {
    if err != 0.0 {
        return false;
    }
    let mut v = x;
    let mut s = shift;
    while s > 1000 {
        v *= 2f64.powi(1000);
        s -= 1000;
    }
    while s < -1000 {
        v *= 2f64.powi(-1000);
        s += 1000;
    }
    v *= 2f64.powi(s);
    v == target
}

/// `a / b` with exact flags (x64 `divsd`).
pub fn div(a: f64, b: f64) -> (f64, FpFlags) {
    let mut flags = denormal_in(&[a, b]);
    if a.is_nan() || b.is_nan() {
        let (v, f) = propagate_nan2(a, b);
        return (v, flags | f);
    }
    if b == 0.0 {
        if a == 0.0 {
            return (f64::from_bits(QNAN_INDEFINITE), flags | FpFlags::INVALID);
        }
        if a.is_finite() {
            return (a / b, flags | FpFlags::DIVZERO);
        }
        return (a / b, flags); // inf / 0 = inf, exact
    }
    if a.is_infinite() && b.is_infinite() {
        return (f64::from_bits(QNAN_INDEFINITE), flags | FpFlags::INVALID);
    }
    let q = a / b;
    if q.is_infinite() && a.is_finite() && b.is_finite() {
        return (q, flags | FpFlags::OVERFLOW | FpFlags::INEXACT);
    }
    if a.is_infinite() || b.is_infinite() {
        return (q, flags); // exact: inf/x or x/inf -> 0
    }
    if a == 0.0 {
        return (q, flags); // 0 / finite-nonzero is exact.
    }
    // Exactness in normalized space (see mul for why the naive fma residual
    // is unreliable near the subnormal range): a/b = (ma/mb) × 2^(ea−eb);
    // qm = fl(ma/mb) is in (0.5, 2) so the residual fma is trustworthy, and
    // the division is exact iff qm is exact AND q equals qm rescaled.
    let (ma, ea) = frexp(a);
    let (mb, eb) = frexp(b);
    let qm = ma / mb;
    let r = qm.mul_add(mb, -ma);
    let exact = q != 0.0 && ldexp_exact_eq(q, -(ea - eb), qm, r);
    if !exact {
        flags |= FpFlags::INEXACT;
        if tiny_scaled(qm, ea - eb) {
            flags |= FpFlags::UNDERFLOW;
        }
    }
    (q, flags)
}

/// `sqrt(a)` with exact flags (x64 `sqrtsd`).
pub fn sqrt(a: f64) -> (f64, FpFlags) {
    let mut flags = denormal_in(&[a]);
    if a.is_nan() {
        if is_snan(a) {
            flags |= FpFlags::INVALID;
        }
        return (quiet(a), flags);
    }
    if a < 0.0 {
        return (f64::from_bits(QNAN_INDEFINITE), flags | FpFlags::INVALID);
    }
    if a == 0.0 || a.is_infinite() {
        return (a, flags); // ±0 -> ±0, +inf -> +inf, exact
    }
    let r = a.sqrt();
    // Exactness check in integer arithmetic. The fma residual trick
    // (r.mul_add(r, -a) != 0) fails for subnormal inputs: the residual is
    // below 2^-1074 and flushes to zero, misreporting exact. Instead
    // compare odd-normalized m·2^e forms: sqrt is exact iff mr² == ma and
    // 2·er == ea.
    let parts = |x: f64| -> (u64, i32) {
        let bits = x.to_bits();
        let biased = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & 0x000F_FFFF_FFFF_FFFF;
        let (mut m, mut e) = if biased > 0 {
            (frac | (1 << 52), biased - 1075)
        } else {
            (frac, -1074)
        };
        while m & 1 == 0 {
            m >>= 1;
            e += 1;
        }
        (m, e)
    };
    let (ma, ea) = parts(a);
    let (mr, er) = parts(r);
    if u128::from(mr) * u128::from(mr) != u128::from(ma) || 2 * er != ea {
        flags |= FpFlags::INEXACT;
    }
    (r, flags)
}

/// x64 `minsd`: `a < b ? a : b`; if either operand is any NaN, or both are
/// zeros, the **second** source is returned; invalid is signaled on any NaN.
pub fn min(a: f64, b: f64) -> (f64, FpFlags) {
    let mut flags = denormal_in(&[a, b]);
    if a.is_nan() || b.is_nan() {
        flags |= FpFlags::INVALID;
        return (b, flags);
    }
    (if a < b { a } else { b }, flags)
}

/// x64 `maxsd`: `a > b ? a : b`; NaN/zero handling as [`min`].
pub fn max(a: f64, b: f64) -> (f64, FpFlags) {
    let mut flags = denormal_in(&[a, b]);
    if a.is_nan() || b.is_nan() {
        flags |= FpFlags::INVALID;
        return (b, flags);
    }
    (if a > b { a } else { b }, flags)
}

/// Fused multiply-add `a*b + c` with conservative flag detection.
///
/// Exactness detection for a fused operation needs wider arithmetic than
/// `f64`; we over-approximate: `inexact` may be reported for a handful of
/// exactly-cancelling cases. Over-reporting only causes a spurious trap whose
/// emulation still produces the correct value, so correctness is preserved.
pub fn fma(a: f64, b: f64, c: f64) -> (f64, FpFlags) {
    let mut flags = denormal_in(&[a, b, c]);
    if a.is_nan() || b.is_nan() || c.is_nan() {
        if is_snan(a) || is_snan(b) || is_snan(c) {
            flags |= FpFlags::INVALID;
        }
        let v = if a.is_nan() {
            quiet(a)
        } else if b.is_nan() {
            quiet(b)
        } else {
            quiet(c)
        };
        return (v, flags);
    }
    if (a == 0.0 && b.is_infinite()) || (b == 0.0 && a.is_infinite()) {
        return (f64::from_bits(QNAN_INDEFINITE), flags | FpFlags::INVALID);
    }
    let r = a.mul_add(b, c);
    if r.is_nan() {
        // inf*x + (-inf) style cancellation.
        return (f64::from_bits(QNAN_INDEFINITE), flags | FpFlags::INVALID);
    }
    if r.is_infinite() {
        if a.is_finite() && b.is_finite() && c.is_finite() {
            flags |= FpFlags::OVERFLOW | FpFlags::INEXACT;
        }
        return (r, flags);
    }
    if a.is_infinite() || b.is_infinite() || c.is_infinite() {
        return (r, flags);
    }
    let (p, e1) = two_prod(a, b);
    if p.is_infinite() {
        // Intermediate product overflowed f64 but the fused result is
        // finite; certainly inexact detection is unreliable — report it.
        flags |= FpFlags::INEXACT;
        return (r, flags);
    }
    if a != 0.0 && b != 0.0 && p.abs() < 2f64.powi(-966) {
        // The product sits so deep that the error-free transform's own
        // error terms underflow (a·b can reach 2^-2098): e1/e2 flush to
        // zero and exactness cannot be decided in f64. Decide it in
        // extended precision instead; the cold path only triggers when
        // |a·b| < 2^-966.
        let rm = crate::flags::Round::NearestEven;
        let ba = crate::bigfloat::BigFloat::from_f64(a, 53, rm).0;
        let bb = crate::bigfloat::BigFloat::from_f64(b, 53, rm).0;
        let bc = crate::bigfloat::BigFloat::from_f64(c, 53, rm).0;
        // 4400 bits hold the exact 106-bit product (exp ≥ -2098) against
        // any 53-bit addend (exp ≤ 1024): span < 3130 + slack.
        let (s, f1) = crate::bigfloat::fma(&ba, &bb, &bc, 4400, rm);
        let (_, f2) = s.to_f64(rm);
        return (r, flags | f1 | f2);
    }
    let (_, e2) = two_sum(p, c);
    if e1 != 0.0 || e2 != 0.0 {
        flags |= FpFlags::INEXACT;
        flags |= underflow_of(r, true);
    }
    (r, flags)
}

/// Result of an SSE compare (`ucomisd` / `comisd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpResult {
    /// a < b  →  ZF=0 PF=0 CF=1
    Less,
    /// a = b  →  ZF=1 PF=0 CF=0
    Equal,
    /// a > b  →  ZF=0 PF=0 CF=0
    Greater,
    /// unordered (NaN involved)  →  ZF=1 PF=1 CF=1
    Unordered,
}

/// x64 `ucomisd`: quiet compare — `IE` only on signaling NaN.
pub fn ucomi(a: f64, b: f64) -> (CmpResult, FpFlags) {
    let mut flags = denormal_in(&[a, b]);
    if a.is_nan() || b.is_nan() {
        if is_snan(a) || is_snan(b) {
            flags |= FpFlags::INVALID;
        }
        return (CmpResult::Unordered, flags);
    }
    let r = if a < b {
        CmpResult::Less
    } else if a > b {
        CmpResult::Greater
    } else {
        CmpResult::Equal
    };
    (r, flags)
}

/// x64 `comisd`: signaling compare — `IE` on *any* NaN.
pub fn comi(a: f64, b: f64) -> (CmpResult, FpFlags) {
    let (r, mut flags) = ucomi(a, b);
    if r == CmpResult::Unordered {
        flags |= FpFlags::INVALID;
    }
    (r, flags)
}

/// x64 `cvtsi2sd` from i64: `PE` if the integer is not representable.
pub fn cvt_i64_to_f64(x: i64) -> (f64, FpFlags) {
    let r = x as f64;
    // r is integer-valued and |r| <= 2^63, so the i128 comparison is exact.
    let flags = if r as i128 == x as i128 {
        FpFlags::NONE
    } else {
        FpFlags::INEXACT
    };
    (r, flags)
}

/// x64 `cvtsi2sd` from i32: always exact.
pub fn cvt_i32_to_f64(x: i32) -> (f64, FpFlags) {
    (x as f64, FpFlags::NONE)
}

/// x64 `cvttsd2si` (truncating) to i64: `IE` on NaN or out-of-range (result
/// is the "integer indefinite" 0x8000…0000), `PE` if fractional.
pub fn cvt_f64_to_i64(a: f64) -> (i64, FpFlags) {
    let mut flags = denormal_in(&[a]);
    if a.is_nan() || !(-9.223372036854776e18..9.223372036854776e18).contains(&a) {
        return (i64::MIN, flags | FpFlags::INVALID);
    }
    let t = a.trunc();
    if t != a {
        flags |= FpFlags::INEXACT;
    }
    (t as i64, flags)
}

/// x64 `cvttsd2si` (truncating) to i32.
pub fn cvt_f64_to_i32(a: f64) -> (i32, FpFlags) {
    let mut flags = denormal_in(&[a]);
    // Valid iff trunc(a) fits i32, i.e. a ∈ (-2^31 - 1, 2^31): the lower
    // bound is *exclusive* — trunc(-2147483649.0) = -2147483649 does not
    // fit and must produce the integer indefinite + IE.
    if a.is_nan() || !(-2147483649.0 < a && a < 2147483648.0) {
        return (i32::MIN, flags | FpFlags::INVALID);
    }
    let t = a.trunc();
    if t != a {
        flags |= FpFlags::INEXACT;
    }
    (t as i32, flags)
}

/// x64 `cvtsd2ss`: narrow to f32 with full flag detection.
pub fn cvt_f64_to_f32(a: f64) -> (f32, FpFlags) {
    let mut flags = denormal_in(&[a]);
    if a.is_nan() {
        if is_snan(a) {
            flags |= FpFlags::INVALID;
        }
        return (quiet(a) as f32, flags);
    }
    let r = a as f32;
    if r.is_infinite() && a.is_finite() {
        return (r, flags | FpFlags::OVERFLOW | FpFlags::INEXACT);
    }
    if f64::from(r) != a {
        flags |= FpFlags::INEXACT;
        // Tininess is judged on the rounding with unbounded exponent: a
        // delivered result of exactly ±2^-126 can come from a value whose
        // 24-bit rounding is still below the normal range. Scaling by
        // 2^100 (exact — `a` is within a factor of two of 2^-126 here)
        // moves the cast's rounding into the f32 normal range, where it
        // reproduces the unbounded-exponent rounding.
        let tiny = r == 0.0
            || r.is_subnormal()
            || (r.abs() == f32::MIN_POSITIVE && {
                let unbounded = (a * 2f64.powi(100)) as f32;
                f64::from(unbounded.abs()) < 2f64.powi(-26)
            });
        if tiny {
            flags |= FpFlags::UNDERFLOW;
        }
    }
    (r, flags)
}

/// x64 `cvtss2sd`: widen to f64 — always exact, `IE` on signaling NaN input.
pub fn cvt_f32_to_f64(a: f32) -> (f64, FpFlags) {
    let mut flags = FpFlags::NONE;
    if a.is_subnormal() {
        flags |= FpFlags::DENORMAL;
    }
    if a.is_nan() && a.to_bits() & 0x0040_0000 == 0 {
        flags |= FpFlags::INVALID;
        return (quiet(f64::from(a)), flags);
    }
    (f64::from(a), flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(v: f64, got: (f64, FpFlags)) {
        assert_eq!(got.0.to_bits(), v.to_bits(), "value mismatch");
        assert_eq!(got.1, FpFlags::NONE, "expected exact, got {}", got.1);
    }

    #[test]
    fn add_exact_and_inexact() {
        exact(3.0, add(1.0, 2.0));
        exact(0.75, add(0.5, 0.25));
        let (v, f) = add(1.0, 1e-30);
        assert_eq!(v, 1.0 + 1e-30);
        assert!(f.contains(FpFlags::INEXACT));
        assert!(!f.contains(FpFlags::UNDERFLOW));
        // 0.1 + 0.2 rounds.
        let (_, f) = add(0.1, 0.2);
        assert!(f.contains(FpFlags::INEXACT));
    }

    #[test]
    fn add_overflow() {
        let (v, f) = add(f64::MAX, f64::MAX);
        assert!(v.is_infinite());
        assert!(f.contains(FpFlags::OVERFLOW | FpFlags::INEXACT));
    }

    #[test]
    fn add_inf_nan() {
        let (v, f) = add(f64::INFINITY, f64::NEG_INFINITY);
        assert!(v.is_nan());
        assert!(f.contains(FpFlags::INVALID));
        let (v, f) = add(f64::INFINITY, 1.0);
        assert!(v.is_infinite());
        assert!(f.is_empty());
        let (v, f) = add(f64::NAN, 1.0);
        assert!(v.is_nan());
        assert!(f.is_empty(), "quiet NaN must not raise IE");
        let snan = f64::from_bits(0x7FF0_0000_0000_0001);
        let (v, f) = add(snan, 1.0);
        assert!(v.is_nan());
        assert!(!is_snan(v), "result must be quieted");
        assert!(f.contains(FpFlags::INVALID));
    }

    #[test]
    fn sub_matches_host() {
        for (a, b) in [(5.0, 3.0), (0.1, 0.2), (1e300, -1e300), (0.0, -0.0)] {
            let (v, _) = sub(a, b);
            assert_eq!(v.to_bits(), (a - b).to_bits());
        }
    }

    #[test]
    fn mul_flags() {
        exact(6.0, mul(2.0, 3.0));
        exact(0.25, mul(0.5, 0.5));
        let (_, f) = mul(0.1, 0.1);
        assert!(f.contains(FpFlags::INEXACT));
        let (v, f) = mul(1e200, 1e200);
        assert!(v.is_infinite());
        assert!(f.contains(FpFlags::OVERFLOW));
        let (v, f) = mul(1e-200, 1e-200);
        assert_eq!(v, 0.0);
        assert!(f.contains(FpFlags::UNDERFLOW | FpFlags::INEXACT));
        let (v, f) = mul(0.0, f64::INFINITY);
        assert!(v.is_nan());
        assert!(f.contains(FpFlags::INVALID));
    }

    #[test]
    fn mul_subnormal_underflow() {
        // 2^-1000 * 2^-100 = 2^-1100: subnormal and inexact? 2^-1100 has
        // a single-bit mantissa; as a subnormal it is representable exactly
        // (min subnormal is 2^-1074), so NO underflow flag (exact result).
        let (v, f) = mul(2f64.powi(-1000), 2f64.powi(-74));
        assert_eq!(v, f64::from_bits(1), "min subnormal");
        assert!(f.is_empty(), "exact subnormal result: {f}");
        // But 3 * 2^-1074 (built from bits: powi(-1074) underflows to
        // zero) times 0.4 rounds in the subnormal range: inexact.
        let (_, f) = mul(f64::from_bits(3), 0.4);
        assert!(f.contains(FpFlags::INEXACT));
        assert!(f.contains(FpFlags::UNDERFLOW));
        // Zero times anything finite is exact, even though the zero
        // cannot be normalized for the residual check.
        let (v, f) = mul(-0.0, 0.4);
        assert_eq!(v.to_bits(), (-0.0f64).to_bits());
        assert!(f.is_empty(), "signed zero product is exact: {f}");
    }

    #[test]
    fn div_flags() {
        exact(2.0, div(6.0, 3.0));
        exact(0.5, div(1.0, 2.0));
        let (_, f) = div(1.0, 3.0);
        assert!(f.contains(FpFlags::INEXACT));
        let (v, f) = div(1.0, 0.0);
        assert!(v.is_infinite());
        assert!(f.contains(FpFlags::DIVZERO));
        assert!(!f.contains(FpFlags::INVALID));
        let (v, f) = div(0.0, 0.0);
        assert!(v.is_nan());
        assert!(f.contains(FpFlags::INVALID));
        let (v, f) = div(f64::INFINITY, f64::INFINITY);
        assert!(v.is_nan());
        assert!(f.contains(FpFlags::INVALID));
        let (v, f) = div(1.0, f64::INFINITY);
        assert_eq!(v, 0.0);
        assert!(f.is_empty());
    }

    #[test]
    fn sqrt_flags() {
        exact(3.0, sqrt(9.0));
        exact(0.5, sqrt(0.25));
        let (_, f) = sqrt(2.0);
        assert!(f.contains(FpFlags::INEXACT));
        let (v, f) = sqrt(-1.0);
        assert!(v.is_nan());
        assert!(f.contains(FpFlags::INVALID));
        exact(0.0, sqrt(0.0));
        let (v, f) = sqrt(-0.0);
        assert_eq!(v.to_bits(), (-0.0f64).to_bits());
        assert!(f.is_empty());
        let (v, f) = sqrt(f64::INFINITY);
        assert!(v.is_infinite());
        assert!(f.is_empty());
    }

    #[test]
    fn minmax_semantics() {
        assert_eq!(min(1.0, 2.0).0, 1.0);
        assert_eq!(max(1.0, 2.0).0, 2.0);
        // x64: NaN in either operand returns the SECOND operand + IE.
        let (v, f) = min(f64::NAN, 2.0);
        assert_eq!(v, 2.0);
        assert!(f.contains(FpFlags::INVALID));
        let (v, f) = min(2.0, f64::NAN);
        assert!(v.is_nan());
        assert!(f.contains(FpFlags::INVALID));
        // min(+0, -0) returns the second operand.
        assert_eq!(min(0.0, -0.0).0.to_bits(), (-0.0f64).to_bits());
        // ... and so do max and the equal-magnitude cases: every ±0 pair
        // and every a == b tie is second-operand-wins on x64.
        assert_eq!(max(0.0, -0.0).0.to_bits(), (-0.0f64).to_bits());
        assert_eq!(max(-0.0, 0.0).0.to_bits(), 0.0f64.to_bits());
        assert_eq!(min(-0.0, 0.0).0.to_bits(), 0.0f64.to_bits());
        // A forwarded NaN keeps its payload and quietness bit: minsd moves
        // src2 through unchanged, even a signaling NaN.
        let snan = f64::from_bits(0x7FF0_0000_0000_0001);
        let (v, f) = min(1.0, snan);
        assert_eq!(v.to_bits(), snan.to_bits(), "sNaN forwarded unquieted");
        assert!(f.contains(FpFlags::INVALID));
        // Quiet NaN also raises IE (unlike addsd): minsd documents invalid
        // on *any* NaN source.
        let (_, f) = max(f64::NAN, 1.0);
        assert!(f.contains(FpFlags::INVALID));
        // Denormal operand flags DE, result still second-operand-wins rules.
        let tiny = f64::from_bits(1);
        let (v, f) = min(tiny, tiny);
        assert_eq!(v.to_bits(), tiny.to_bits());
        assert!(f.contains(FpFlags::DENORMAL));
    }

    #[test]
    fn mul_underflow_at_min_normal_boundary() {
        // (1 − 2^-53) × 2^-1022: the delivered product rounds up to
        // exactly MIN_POSITIVE (a *normal* number), but rounding with
        // unbounded exponent keeps it tiny — masked x64 raises UE|PE.
        let a = f64::from_bits(0x3FEF_FFFF_FFFF_FFFF); // 1 − 2^-53
        let b = f64::MIN_POSITIVE;
        let (p, f) = mul(a, b);
        assert_eq!(p, f64::MIN_POSITIVE);
        assert!(f.contains(FpFlags::UNDERFLOW), "tiny after rounding: {f}");
        assert!(f.contains(FpFlags::INEXACT));
        // Same boundary through div: (1.111…1₂ × 2^-1022) / 2 has the
        // exact quotient (1 − 2^-53) × 2^-1022, which also delivers
        // MIN_POSITIVE (tie-to-even at subnormal precision) yet is tiny
        // with the exponent unbounded.
        let num = f64::from_bits(0x001F_FFFF_FFFF_FFFF);
        let (q, f) = div(num, 2.0);
        assert_eq!(q, f64::MIN_POSITIVE);
        assert!(f.contains(FpFlags::UNDERFLOW), "div boundary: {f}");
        assert!(f.contains(FpFlags::INEXACT));
        // Just above: (1 + 2^-52)² × 2^-1022 is inexact but rounds
        // (unbounded) to at least the min normal — PE without UE.
        let one_ulp = f64::from_bits(0x3FF0_0000_0000_0001); // 1 + 2^-52
        let c = f64::MIN_POSITIVE * one_ulp; // exact: 2^-1022 + 2^-1074
        let (p, f) = mul(c, one_ulp);
        assert!(p >= f64::MIN_POSITIVE && !p.is_subnormal());
        assert!(f.contains(FpFlags::INEXACT));
        assert!(!f.contains(FpFlags::UNDERFLOW), "not tiny after rounding");
    }

    #[test]
    fn compare_semantics() {
        assert_eq!(ucomi(1.0, 2.0).0, CmpResult::Less);
        assert_eq!(ucomi(2.0, 1.0).0, CmpResult::Greater);
        assert_eq!(ucomi(1.0, 1.0).0, CmpResult::Equal);
        assert_eq!(ucomi(0.0, -0.0).0, CmpResult::Equal);
        let (r, f) = ucomi(f64::NAN, 1.0);
        assert_eq!(r, CmpResult::Unordered);
        assert!(f.is_empty(), "ucomisd must not signal on quiet NaN");
        let snan = f64::from_bits(0x7FF0_0000_0000_0001);
        let (r, f) = ucomi(snan, 1.0);
        assert_eq!(r, CmpResult::Unordered);
        assert!(f.contains(FpFlags::INVALID));
        let (r, f) = comi(f64::NAN, 1.0);
        assert_eq!(r, CmpResult::Unordered);
        assert!(f.contains(FpFlags::INVALID), "comisd signals on any NaN");
    }

    #[test]
    fn conversions() {
        exact_i(5, cvt_f64_to_i64(5.0));
        let (v, f) = cvt_f64_to_i64(5.5);
        assert_eq!(v, 5);
        assert!(f.contains(FpFlags::INEXACT));
        let (v, f) = cvt_f64_to_i64(-5.5);
        assert_eq!(v, -5);
        assert!(f.contains(FpFlags::INEXACT));
        let (v, f) = cvt_f64_to_i64(f64::NAN);
        assert_eq!(v, i64::MIN);
        assert!(f.contains(FpFlags::INVALID));
        let (v, f) = cvt_f64_to_i64(1e19);
        assert_eq!(v, i64::MIN);
        assert!(f.contains(FpFlags::INVALID));
        // i64::MIN is exactly representable and in range.
        let (v, f) = cvt_f64_to_i64(-9.223372036854776e18);
        assert_eq!(v, i64::MIN);
        assert!(f.is_empty());

        let (v, f) = cvt_i64_to_f64(1 << 54);
        assert_eq!(v, (1u64 << 54) as f64);
        assert!(f.is_empty(), "2^54 is exactly representable");
        let (_, f) = cvt_i64_to_f64((1 << 54) + 1);
        assert!(f.contains(FpFlags::INEXACT));
        assert_eq!(cvt_i32_to_f64(i32::MAX), (2147483647.0, FpFlags::NONE));

        let (v, f) = cvt_f64_to_f32(1.5);
        assert_eq!(v, 1.5f32);
        assert!(f.is_empty());
        let (_, f) = cvt_f64_to_f32(0.1);
        assert!(f.contains(FpFlags::INEXACT));
        let (v, f) = cvt_f64_to_f32(1e300);
        assert!(v.is_infinite());
        assert!(f.contains(FpFlags::OVERFLOW));
        let (v, f) = cvt_f64_to_f32(1e-300);
        assert!(v == 0.0 || v.is_subnormal());
        assert!(f.contains(FpFlags::UNDERFLOW | FpFlags::INEXACT));
        let (v, f) = cvt_f32_to_f64(1.5f32);
        assert_eq!(v, 1.5);
        assert!(f.is_empty());
    }

    fn exact_i(v: i64, got: (i64, FpFlags)) {
        assert_eq!(got.0, v);
        assert_eq!(got.1, FpFlags::NONE);
    }

    #[test]
    fn cvt_f32_underflow_at_min_normal_boundary() {
        // a = 2^-126 − 3·2^-152: the 24-bit rounding with unbounded
        // exponent gives 2^-126 − 2^-150 (still tiny), but the delivered
        // subnormal-precision rounding carries up to exactly 2^-126 — a
        // normal f32. Tininess is judged on the former: UNDERFLOW.
        let a = 2f64.powi(-126) - 3.0 * 2f64.powi(-152);
        let (v, f) = cvt_f64_to_f32(a);
        assert_eq!(v, f32::MIN_POSITIVE);
        assert_eq!(f, FpFlags::UNDERFLOW | FpFlags::INEXACT);

        // a = 2^-126 − 2^-152 rounds to 2^-126 already at 24 bits with the
        // exponent unbounded: not tiny, INEXACT only.
        let a = 2f64.powi(-126) - 2f64.powi(-152);
        let (v, f) = cvt_f64_to_f32(a);
        assert_eq!(v, f32::MIN_POSITIVE);
        assert_eq!(f, FpFlags::INEXACT);

        // Exact subnormal: no flags at all.
        let (v, f) = cvt_f64_to_f32(2f64.powi(-149));
        assert_eq!(v, f32::from_bits(1));
        assert_eq!(f, FpFlags::NONE);
    }

    #[test]
    fn fma_basic() {
        let (v, f) = fma(2.0, 3.0, 4.0);
        assert_eq!(v, 10.0);
        assert!(f.is_empty());
        let (v, f) = fma(0.1, 0.1, 0.0);
        assert_eq!(v, 0.1f64.mul_add(0.1, 0.0));
        assert!(f.contains(FpFlags::INEXACT));
        let (v, f) = fma(f64::INFINITY, 0.0, 1.0);
        assert!(v.is_nan());
        assert!(f.contains(FpFlags::INVALID));
    }

    #[test]
    fn denormal_flag() {
        let tiny = f64::from_bits(1);
        let (_, f) = add(tiny, 1.0);
        assert!(f.contains(FpFlags::DENORMAL));
        let (_, f) = mul(tiny, 2.0);
        assert!(f.contains(FpFlags::DENORMAL));
    }

    #[test]
    fn values_always_match_host() {
        // The value channel must agree with host IEEE arithmetic bit-for-bit
        // on a grid of interesting operands.
        let xs = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            0.5,
            3.5,
            1e-300,
            1e300,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(add(a, b).0.to_bits(), (a + b).to_bits());
                assert_eq!(sub(a, b).0.to_bits(), (a - b).to_bits());
                if !((a == 0.0 && b.is_infinite()) || (b == 0.0 && a.is_infinite())) {
                    assert_eq!(mul(a, b).0.to_bits(), (a * b).to_bits());
                }
                let host_div = a / b;
                if !host_div.is_nan() {
                    assert_eq!(div(a, b).0.to_bits(), host_div.to_bits());
                }
            }
            let host_sqrt = a.sqrt();
            if !host_sqrt.is_nan() {
                assert_eq!(sqrt(a).0.to_bits(), host_sqrt.to_bits());
            }
        }
    }
}
