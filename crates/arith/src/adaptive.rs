//! **Adaptive precision** arithmetic — the extension the paper flags as
//! future work in §4.3: "the precision used by FPVM is determined by a
//! compile-time configurable parameter or environment variable, and *we are
//! also considering an adaptive precision version*."
//!
//! [`AdaptiveCtx`] wraps [`crate::bigfloat`] with significance tracking:
//! every shadow value carries an absolute error bound (as a binary
//! exponent), propagated through each operation. The working precision of
//! each result is chosen so that representation error stays below the
//! propagated data error — storing mantissa bits that are already garbage
//! buys nothing, so well-conditioned chains stay cheap (near `target`
//! bits) while cancellation-prone chains are *not* padded with fake
//! precision. Bounds:
//!
//! * exact inputs (promoted doubles, exact results) carry no error and
//!   compute at `target` bits;
//! * addition propagates absolute error (`max(e_a, e_b) + 1`);
//! * multiplication/division/sqrt propagate *relative* error
//!   (`max(r_a, r_b) + 1` significant-bit loss);
//! * precision is clamped to `[min_prec, target]`.
//!
//! This is coarse interval-style bookkeeping (upper bounds, not tight
//! enclosures) — enough to demonstrate the design point the paper gestures
//! at, and to measure its cost/precision profile in the bench suite.

use crate::bigfloat::{self, BigFloat};
use crate::flags::{FpFlags, Round};
use crate::softfp::CmpResult;
use crate::system::ArithSystem;

/// A shadow value with significance tracking.
#[derive(Debug, Clone)]
pub struct AdaptiveValue {
    /// The numeric value.
    pub value: BigFloat,
    /// Absolute error bound: |true − stored| ≤ 2^err_exp. `None` = exact
    /// (no data error beyond representation).
    pub err_exp: Option<i64>,
}

impl AdaptiveValue {
    /// Bits of significance the value still carries (∞ for exact).
    pub fn significant_bits(&self) -> Option<i64> {
        self.err_exp.map(|e| self.value.exp() - e)
    }
}

/// Adaptive-precision arithmetic context.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveCtx {
    /// Accuracy goal: precision used when inputs are exact.
    pub target: u32,
    /// Floor precision.
    pub min_prec: u32,
}

impl AdaptiveCtx {
    /// New context with the given accuracy goal.
    pub fn new(target: u32) -> Self {
        AdaptiveCtx {
            target: target.max(bigfloat::MIN_PREC),
            min_prec: 32,
        }
    }

    /// Representation error exponent of a value stored at `prec`.
    fn rep_err(v: &BigFloat, prec: u32) -> i64 {
        v.exp() - i64::from(prec)
    }

    /// Choose the working precision for a result with magnitude exponent
    /// `exp_r` and propagated absolute error bound `err`.
    fn choose_prec(&self, exp_r: i64, err: Option<i64>) -> u32 {
        match err {
            None => self.target,
            Some(e) => {
                // Keep 2 guard bits below the error level.
                let useful = exp_r - e + 2;
                useful.clamp(i64::from(self.min_prec), i64::from(self.target)) as u32
            }
        }
    }

    fn exact(&self, value: BigFloat) -> AdaptiveValue {
        AdaptiveValue {
            value,
            err_exp: None,
        }
    }

    /// Wrap a result: combine propagated error with the rounding error of
    /// this operation (inexact at `prec` adds a representation-level term).
    fn wrap(
        &self,
        value: BigFloat,
        prec: u32,
        propagated: Option<i64>,
        flags: FpFlags,
    ) -> AdaptiveValue {
        let rounding = if flags.contains(FpFlags::INEXACT) {
            Some(Self::rep_err(&value, prec))
        } else {
            None
        };
        let err_exp = match (propagated, rounding) {
            (None, r) => r,
            (p, None) => p,
            (Some(p), Some(r)) => Some(p.max(r) + 1),
        };
        AdaptiveValue { value, err_exp }
    }

    /// Absolute-error propagation for add/sub.
    fn abs_err2(a: &AdaptiveValue, b: &AdaptiveValue) -> Option<i64> {
        match (a.err_exp, b.err_exp) {
            (None, None) => None,
            (Some(e), None) | (None, Some(e)) => Some(e + 1),
            (Some(x), Some(y)) => Some(x.max(y) + 1),
        }
    }

    /// Relative-error propagation for mul/div: returns the result's
    /// absolute error bound given the result magnitude.
    fn rel_err2(a: &AdaptiveValue, b: &AdaptiveValue, exp_r: i64) -> Option<i64> {
        let rel = |v: &AdaptiveValue| v.err_exp.map(|e| e - v.value.exp());
        match (rel(a), rel(b)) {
            (None, None) => None,
            (Some(r), None) | (None, Some(r)) => Some(exp_r + r + 1),
            (Some(x), Some(y)) => Some(exp_r + x.max(y) + 1),
        }
    }

    fn bin(
        &self,
        a: &AdaptiveValue,
        b: &AdaptiveValue,
        rm: Round,
        absolute: bool,
        f: impl Fn(&BigFloat, &BigFloat, u32, Round) -> (BigFloat, FpFlags),
    ) -> (AdaptiveValue, FpFlags) {
        // First probe at modest precision to learn the result magnitude,
        // then compute at the chosen precision. (A probe at target would be
        // wasteful — magnitude only needs a few bits.)
        let (probe, _) = f(&a.value, &b.value, 16, rm);
        let exp_r = probe.exp();
        let propagated = if absolute {
            Self::abs_err2(a, b)
        } else {
            Self::rel_err2(a, b, exp_r)
        };
        let prec = self.choose_prec(exp_r, propagated);
        let (v, flags) = f(&a.value, &b.value, prec, rm);
        (self.wrap(v, prec, propagated, flags), flags)
    }
}

impl ArithSystem for AdaptiveCtx {
    type Value = AdaptiveValue;

    fn name(&self) -> String {
        format!("adaptive{}", self.target)
    }

    fn from_f64(&self, x: f64) -> AdaptiveValue {
        self.exact(BigFloat::from_f64(x, 53, Round::NearestEven).0)
    }
    fn to_f64(&self, v: &AdaptiveValue, rm: Round) -> (f64, FpFlags) {
        v.value.to_f64(rm)
    }
    fn from_f32(&self, x: f32) -> (AdaptiveValue, FpFlags) {
        let (v, flags) = BigFloat::from_f64(f64::from(x), 53, Round::NearestEven);
        (self.exact(v), flags)
    }
    fn to_f32(&self, v: &AdaptiveValue, rm: Round) -> (f32, FpFlags) {
        let (d, f1) = v.value.to_f64(rm);
        let (s, f2) = crate::softfp::cvt_f64_to_f32(d);
        (s, f1 | f2)
    }
    fn from_i32(&self, x: i32) -> (AdaptiveValue, FpFlags) {
        (
            self.exact(BigFloat::from_f64(f64::from(x), 53, Round::NearestEven).0),
            FpFlags::NONE,
        )
    }
    fn from_i64(&self, x: i64) -> (AdaptiveValue, FpFlags) {
        if x == 0 {
            return (self.exact(BigFloat::zero(false, 53)), FpFlags::NONE);
        }
        let (v, _) =
            BigFloat::from_int(x < 0, 0, &[x.unsigned_abs()], false, 64, Round::NearestEven);
        (self.exact(v), FpFlags::NONE)
    }
    fn to_i32(&self, v: &AdaptiveValue) -> (i32, FpFlags) {
        let (d, _) = v.value.to_f64(Round::Zero);
        crate::softfp::cvt_f64_to_i32(d)
    }
    fn to_i64(&self, v: &AdaptiveValue) -> (i64, FpFlags) {
        match v.value.to_integer_parts() {
            None => (i64::MIN, FpFlags::INVALID),
            Some((sign, mag, inexact)) => {
                let limit = if sign { 1u128 << 63 } else { (1u128 << 63) - 1 };
                if mag > limit {
                    return (i64::MIN, FpFlags::INVALID);
                }
                let val = if sign {
                    (mag as u64).wrapping_neg() as i64
                } else {
                    mag as i64
                };
                (
                    val,
                    if inexact {
                        FpFlags::INEXACT
                    } else {
                        FpFlags::NONE
                    },
                )
            }
        }
    }
    fn from_u64(&self, x: u64) -> (AdaptiveValue, FpFlags) {
        if x == 0 {
            return (self.exact(BigFloat::zero(false, 53)), FpFlags::NONE);
        }
        let (v, _) = BigFloat::from_int(false, 0, &[x], false, 64, Round::NearestEven);
        (self.exact(v), FpFlags::NONE)
    }
    fn to_u64(&self, v: &AdaptiveValue) -> (u64, FpFlags) {
        let (i, f) = self.to_i64(v);
        if i < 0 {
            (u64::MAX, FpFlags::INVALID)
        } else {
            (i as u64, f)
        }
    }

    fn add(&self, a: &AdaptiveValue, b: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.bin(a, b, rm, true, bigfloat::add)
    }
    fn sub(&self, a: &AdaptiveValue, b: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.bin(a, b, rm, true, bigfloat::sub)
    }
    fn mul(&self, a: &AdaptiveValue, b: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.bin(a, b, rm, false, bigfloat::mul)
    }
    fn div(&self, a: &AdaptiveValue, b: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.bin(a, b, rm, false, bigfloat::div)
    }
    fn fma(
        &self,
        a: &AdaptiveValue,
        b: &AdaptiveValue,
        c: &AdaptiveValue,
        rm: Round,
    ) -> (AdaptiveValue, FpFlags) {
        let (p, f1) = self.mul(a, b, rm);
        let (s, f2) = self.add(&p, c, rm);
        (s, f1 | f2)
    }
    fn sqrt(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        // sqrt halves relative error; be conservative and keep it.
        let (probe, _) = bigfloat::sqrt(&a.value, 16, rm);
        let exp_r = probe.exp();
        let propagated = a.err_exp.map(|e| exp_r + (e - a.value.exp()) + 1);
        let prec = self.choose_prec(exp_r, propagated);
        let (v, flags) = bigfloat::sqrt(&a.value, prec, rm);
        (self.wrap(v, prec, propagated, flags), flags)
    }
    fn min(&self, a: &AdaptiveValue, b: &AdaptiveValue) -> (AdaptiveValue, FpFlags) {
        match bigfloat::cmp_quiet(&a.value, &b.value).0 {
            CmpResult::Unordered => (b.clone(), FpFlags::INVALID),
            CmpResult::Less => (a.clone(), FpFlags::NONE),
            _ => (b.clone(), FpFlags::NONE),
        }
    }
    fn max(&self, a: &AdaptiveValue, b: &AdaptiveValue) -> (AdaptiveValue, FpFlags) {
        match bigfloat::cmp_quiet(&a.value, &b.value).0 {
            CmpResult::Unordered => (b.clone(), FpFlags::INVALID),
            CmpResult::Greater => (a.clone(), FpFlags::NONE),
            _ => (b.clone(), FpFlags::NONE),
        }
    }
    fn neg(&self, a: &AdaptiveValue) -> (AdaptiveValue, FpFlags) {
        (
            AdaptiveValue {
                value: a.value.neg(),
                err_exp: a.err_exp,
            },
            FpFlags::NONE,
        )
    }
    fn abs(&self, a: &AdaptiveValue) -> (AdaptiveValue, FpFlags) {
        (
            AdaptiveValue {
                value: a.value.abs(),
                err_exp: a.err_exp,
            },
            FpFlags::NONE,
        )
    }

    fn sin(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::sin)
    }
    fn cos(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::cos)
    }
    fn tan(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::tan)
    }
    fn asin(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::asin)
    }
    fn acos(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::acos)
    }
    fn atan(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::atan)
    }
    fn atan2(&self, y: &AdaptiveValue, x: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        let prec = self.target;
        let (v, flags) = bigfloat::atan2(&y.value, &x.value, prec, rm);
        let propagated = Self::abs_err2(y, x);
        (self.wrap(v, prec, propagated, flags), flags)
    }
    fn exp(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::exp)
    }
    fn log(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::log)
    }
    fn log10(&self, a: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        self.transcendental(a, rm, bigfloat::log10)
    }
    fn pow(&self, a: &AdaptiveValue, b: &AdaptiveValue, rm: Round) -> (AdaptiveValue, FpFlags) {
        let prec = self.target;
        let (v, flags) = bigfloat::pow(&a.value, &b.value, prec, rm);
        let propagated = Self::abs_err2(a, b).map(|_| Self::rep_err(&v, prec) + 2);
        (self.wrap(v, prec, propagated, flags), flags)
    }
    fn floor(&self, a: &AdaptiveValue) -> (AdaptiveValue, FpFlags) {
        let (v, f) = bigfloat::floor(&a.value, self.target);
        (self.wrap(v, self.target, a.err_exp, f), f)
    }
    fn ceil(&self, a: &AdaptiveValue) -> (AdaptiveValue, FpFlags) {
        let (v, f) = bigfloat::ceil(&a.value, self.target);
        (self.wrap(v, self.target, a.err_exp, f), f)
    }

    fn cmp_quiet(&self, a: &AdaptiveValue, b: &AdaptiveValue) -> (CmpResult, FpFlags) {
        bigfloat::cmp_quiet(&a.value, &b.value)
    }
    fn cmp_signaling(&self, a: &AdaptiveValue, b: &AdaptiveValue) -> (CmpResult, FpFlags) {
        bigfloat::cmp_signaling(&a.value, &b.value)
    }

    fn is_nan(&self, a: &AdaptiveValue) -> bool {
        a.value.is_nan()
    }

    fn render(&self, v: &AdaptiveValue) -> String {
        match v.significant_bits() {
            None => {
                let digits = (f64::from(self.target) * std::f64::consts::LOG10_2).ceil() as usize;
                v.value.to_decimal(digits.max(17))
            }
            Some(bits) => {
                let digits = ((bits.max(4) as f64) * std::f64::consts::LOG10_2).ceil() as usize;
                format!(
                    "{} (~{} significant bits)",
                    v.value.to_decimal(digits.clamp(4, 80)),
                    bits.max(0)
                )
            }
        }
    }
}

impl AdaptiveCtx {
    fn transcendental(
        &self,
        a: &AdaptiveValue,
        rm: Round,
        f: impl Fn(&BigFloat, u32, Round) -> (BigFloat, FpFlags),
    ) -> (AdaptiveValue, FpFlags) {
        // Transcendentals have bounded condition numbers on our workloads'
        // ranges; propagate the input's relative significance.
        let (probe, _) = f(&a.value, 16, rm);
        let exp_r = probe.exp();
        let propagated = a.err_exp.map(|e| exp_r + (e - a.value.exp()) + 2);
        let prec = self.choose_prec(exp_r, propagated);
        let (v, flags) = f(&a.value, prec, rm);
        (self.wrap(v, prec, propagated, flags), flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_inputs_compute_at_target() {
        let ctx = AdaptiveCtx::new(200);
        let a = ctx.from_f64(1.0);
        let b = ctx.from_f64(3.0);
        let (q, f) = ctx.div(&a, &b, Round::NearestEven);
        assert!(f.contains(FpFlags::INEXACT));
        // 1/3 at the 200-bit accuracy goal.
        assert!(q.value.prec() >= 195, "prec = {}", q.value.prec());
        // One rounding: ~target significant bits.
        let sig = q.significant_bits().unwrap();
        assert!(sig >= 195, "sig = {sig}");
    }

    #[test]
    fn error_propagates_and_precision_follows() {
        let ctx = AdaptiveCtx::new(256);
        let rm = Round::NearestEven;
        let mut x = ctx.div(&ctx.from_f64(1.0), &ctx.from_f64(3.0), rm).0;
        let mut sig_prev = x.significant_bits().unwrap();
        // A chain of multiplies loses ~1 significance bit per op (bound).
        for _ in 0..20 {
            x = ctx.mul(&x, &x, rm).0;
            let sig = x.significant_bits().unwrap();
            assert!(sig <= sig_prev + 1, "significance must not grow");
            sig_prev = sig;
        }
        // Still plenty of true bits: value stays accurate vs plain 256-bit.
        assert!(sig_prev > 200, "sig after chain = {sig_prev}");
    }

    #[test]
    fn catastrophic_cancellation_is_tracked() {
        let ctx = AdaptiveCtx::new(200);
        let rm = Round::NearestEven;
        // x = 1/3 computed (one rounding), y = x exactly; x - y = 0 is
        // computed exactly, but (x + 1e-30) - x cancels ~100 bits.
        let third = ctx.div(&ctx.from_f64(1.0), &ctx.from_f64(3.0), rm).0;
        let tiny = ctx.from_f64(1e-30);
        let shifted = ctx.add(&third, &tiny, rm).0;
        let diff = ctx.sub(&shifted, &third, rm).0;
        // The difference is ~1e-30 with a rounding error from the 200-bit
        // additions: far fewer than 200 significant bits remain.
        let sig = diff.significant_bits().unwrap();
        assert!(sig < 150, "cancellation must reduce significance: {sig}");
        // And the stored precision followed the significance down.
        assert!(
            u64::from(diff.value.prec()) <= sig as u64 + 8,
            "prec {} vs sig {}",
            diff.value.prec(),
            sig
        );
        // The value itself is still right to within its advertised error.
        let (d, _) = ctx.to_f64(&diff, rm);
        assert!((d - 1e-30).abs() < 1e-44, "{d}");
    }

    #[test]
    fn exact_ops_stay_exact() {
        let ctx = AdaptiveCtx::new(128);
        let rm = Round::NearestEven;
        let a = ctx.from_f64(1.5);
        let b = ctx.from_f64(0.25);
        let (s, f) = ctx.add(&a, &b, rm);
        assert!(f.is_empty());
        assert!(s.err_exp.is_none(), "exact result carries no error");
        let (p, f) = ctx.mul(&s, &b, rm);
        assert!(f.is_empty());
        assert!(p.err_exp.is_none());
        assert_eq!(ctx.to_f64(&p, rm).0, 1.75 * 0.25);
    }

    #[test]
    fn renders_significance() {
        let ctx = AdaptiveCtx::new(200);
        let rm = Round::NearestEven;
        let third = ctx.div(&ctx.from_f64(1.0), &ctx.from_f64(3.0), rm).0;
        let s = ctx.render(&third);
        assert!(s.contains("significant bits"), "{s}");
        assert!(s.starts_with("3.3333"), "{s}");
    }
}
