//! The **Vanilla** arithmetic system (§4.3): IEEE 64-bit floating point
//! re-implemented in software.
//!
//! "The primary purpose of Vanilla is to allow us to test the other elements
//! of FPVM independently. If FPVM is working correctly, then Vanilla should
//! produce the identical results to running without FPVM." — §4.3.
//!
//! Every operation delegates to [`crate::softfp`], which computes both the
//! bit-exact IEEE result and the exact exception flags, so a program
//! virtualized onto Vanilla is bit-identical to native execution (§5.2).

use crate::flags::{FpFlags, Round};
use crate::softfp::{self, CmpResult};
use crate::system::ArithSystem;

/// The Vanilla system. Zero-sized; `Value = f64`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vanilla;

/// Flags for a libm-style transcendental: inexact unless the result is
/// trivially exact, invalid on NaN-producing domain errors.
fn libm_flags(input_nan: bool, result: f64, exact: bool) -> FpFlags {
    if result.is_nan() && !input_nan {
        FpFlags::INVALID
    } else if exact {
        FpFlags::NONE
    } else {
        FpFlags::INEXACT
    }
}

impl ArithSystem for Vanilla {
    type Value = f64;

    fn name(&self) -> String {
        "vanilla".to_string()
    }

    fn from_f64(&self, x: f64) -> f64 {
        x
    }
    fn to_f64(&self, v: &f64, _rm: Round) -> (f64, FpFlags) {
        (*v, FpFlags::NONE)
    }
    fn from_f32(&self, x: f32) -> (f64, FpFlags) {
        softfp::cvt_f32_to_f64(x)
    }
    fn to_f32(&self, v: &f64, _rm: Round) -> (f32, FpFlags) {
        softfp::cvt_f64_to_f32(*v)
    }
    fn from_i32(&self, x: i32) -> (f64, FpFlags) {
        softfp::cvt_i32_to_f64(x)
    }
    fn from_i64(&self, x: i64) -> (f64, FpFlags) {
        softfp::cvt_i64_to_f64(x)
    }
    fn to_i32(&self, v: &f64) -> (i32, FpFlags) {
        softfp::cvt_f64_to_i32(*v)
    }
    fn to_i64(&self, v: &f64) -> (i64, FpFlags) {
        softfp::cvt_f64_to_i64(*v)
    }
    fn from_u64(&self, x: u64) -> (f64, FpFlags) {
        let r = x as f64;
        let flags = if r as u128 == x as u128 {
            FpFlags::NONE
        } else {
            FpFlags::INEXACT
        };
        (r, flags)
    }
    fn to_u64(&self, v: &f64) -> (u64, FpFlags) {
        let a = *v;
        // Truncation happens before the range check (vcvttsd2usi): values
        // in (-1, 0) convert to 0 with INEXACT, matching the BigFloat and
        // posit backends; only truncated values outside [0, 2^64) are
        // invalid.
        if a.is_nan() || !(-1.0 < a && a < 1.8446744073709552e19) {
            return (u64::MAX, FpFlags::INVALID);
        }
        let t = a.trunc();
        let flags = if t != a {
            FpFlags::INEXACT
        } else {
            FpFlags::NONE
        };
        (t.abs() as u64, flags)
    }

    fn add(&self, a: &f64, b: &f64, _rm: Round) -> (f64, FpFlags) {
        softfp::add(*a, *b)
    }
    fn sub(&self, a: &f64, b: &f64, _rm: Round) -> (f64, FpFlags) {
        softfp::sub(*a, *b)
    }
    fn mul(&self, a: &f64, b: &f64, _rm: Round) -> (f64, FpFlags) {
        softfp::mul(*a, *b)
    }
    fn div(&self, a: &f64, b: &f64, _rm: Round) -> (f64, FpFlags) {
        softfp::div(*a, *b)
    }
    fn fma(&self, a: &f64, b: &f64, c: &f64, _rm: Round) -> (f64, FpFlags) {
        softfp::fma(*a, *b, *c)
    }
    fn sqrt(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        softfp::sqrt(*a)
    }
    fn min(&self, a: &f64, b: &f64) -> (f64, FpFlags) {
        softfp::min(*a, *b)
    }
    fn max(&self, a: &f64, b: &f64) -> (f64, FpFlags) {
        softfp::max(*a, *b)
    }
    fn neg(&self, a: &f64) -> (f64, FpFlags) {
        (-*a, FpFlags::NONE)
    }
    fn abs(&self, a: &f64) -> (f64, FpFlags) {
        (a.abs(), FpFlags::NONE)
    }

    fn sin(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.sin();
        (r, libm_flags(a.is_nan(), r, *a == 0.0))
    }
    fn cos(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.cos();
        (r, libm_flags(a.is_nan(), r, false))
    }
    fn tan(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.tan();
        (r, libm_flags(a.is_nan(), r, *a == 0.0))
    }
    fn asin(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.asin();
        (r, libm_flags(a.is_nan(), r, *a == 0.0))
    }
    fn acos(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.acos();
        (r, libm_flags(a.is_nan(), r, false))
    }
    fn atan(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.atan();
        (r, libm_flags(a.is_nan(), r, *a == 0.0))
    }
    fn atan2(&self, y: &f64, x: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = y.atan2(*x);
        (r, libm_flags(y.is_nan() || x.is_nan(), r, false))
    }
    fn exp(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.exp();
        (r, libm_flags(a.is_nan(), r, *a == 0.0))
    }
    fn log(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.ln();
        (r, libm_flags(a.is_nan(), r, *a == 1.0))
    }
    fn log10(&self, a: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.log10();
        (r, libm_flags(a.is_nan(), r, *a == 1.0))
    }
    fn pow(&self, a: &f64, b: &f64, _rm: Round) -> (f64, FpFlags) {
        let r = a.powf(*b);
        (
            r,
            libm_flags(a.is_nan() || b.is_nan(), r, *b == 0.0 || *b == 1.0),
        )
    }
    fn floor(&self, a: &f64) -> (f64, FpFlags) {
        // roundsd: signaling NaNs are quieted and raise IE; the precision
        // exception is suppressed (imm8 bit 3), so no other flags.
        if a.is_nan() {
            let f = if softfp::is_snan(*a) {
                FpFlags::INVALID
            } else {
                FpFlags::NONE
            };
            return (softfp::quiet(*a), f);
        }
        (a.floor(), FpFlags::NONE)
    }
    fn ceil(&self, a: &f64) -> (f64, FpFlags) {
        if a.is_nan() {
            let f = if softfp::is_snan(*a) {
                FpFlags::INVALID
            } else {
                FpFlags::NONE
            };
            return (softfp::quiet(*a), f);
        }
        (a.ceil(), FpFlags::NONE)
    }

    fn cmp_quiet(&self, a: &f64, b: &f64) -> (CmpResult, FpFlags) {
        softfp::ucomi(*a, *b)
    }
    fn cmp_signaling(&self, a: &f64, b: &f64) -> (CmpResult, FpFlags) {
        softfp::comi(*a, *b)
    }

    fn is_nan(&self, a: &f64) -> bool {
        a.is_nan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_matches_host_bits() {
        let v = Vanilla;
        let rm = Round::NearestEven;
        let xs = [0.1, 0.2, 1.5, -3.75, 1e100, -1e-100, 0.0];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(v.add(&a, &b, rm).0.to_bits(), (a + b).to_bits());
                assert_eq!(v.sub(&a, &b, rm).0.to_bits(), (a - b).to_bits());
                assert_eq!(v.mul(&a, &b, rm).0.to_bits(), (a * b).to_bits());
                if b != 0.0 {
                    assert_eq!(v.div(&a, &b, rm).0.to_bits(), (a / b).to_bits());
                }
            }
            assert_eq!(v.sin(&a, rm).0.to_bits(), a.sin().to_bits());
            assert_eq!(v.cos(&a, rm).0.to_bits(), a.cos().to_bits());
            assert_eq!(v.exp(&a, rm).0.to_bits(), a.exp().to_bits());
        }
    }

    #[test]
    fn transcendental_flags() {
        let v = Vanilla;
        let rm = Round::NearestEven;
        // sin(0) is exact.
        assert_eq!(v.sin(&0.0, rm).1, FpFlags::NONE);
        // sin(1) is inexact.
        assert!(v.sin(&1.0, rm).1.contains(FpFlags::INEXACT));
        // log(-1) is a domain error.
        assert!(v.log(&-1.0, rm).1.contains(FpFlags::INVALID));
        // sqrt via the arith interface.
        assert!(v.sqrt(&-1.0, rm).1.contains(FpFlags::INVALID));
    }

    #[test]
    fn u64_conversions() {
        let v = Vanilla;
        assert_eq!(v.from_u64(16).0, 16.0);
        assert_eq!(v.from_u64(16).1, FpFlags::NONE);
        assert!(v.from_u64(u64::MAX).1.contains(FpFlags::INEXACT));
        assert_eq!(v.to_u64(&16.5), (16, FpFlags::INEXACT));
        assert_eq!(v.to_u64(&-1.0).1, FpFlags::INVALID);
        assert_eq!(v.to_u64(&f64::NAN).1, FpFlags::INVALID);
    }
}
