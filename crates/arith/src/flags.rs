//! IEEE 754 exception flags and rounding modes, mirroring the x64 `%mxcsr`
//! condition-code bits that drive FPVM's trap-and-emulate engine (§4.1).

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

/// Sticky IEEE exception flags, with the same bit positions as the low six
/// bits of `%mxcsr` so the machine can splice them in directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FpFlags(pub u8);

impl FpFlags {
    /// No exceptions.
    pub const NONE: FpFlags = FpFlags(0);
    /// Invalid operation (`IE`, mxcsr bit 0): sNaN consumed, 0/0, ∞−∞, √−x …
    pub const INVALID: FpFlags = FpFlags(1 << 0);
    /// Denormal operand (`DE`, mxcsr bit 1).
    pub const DENORMAL: FpFlags = FpFlags(1 << 1);
    /// Divide by zero (`ZE`, mxcsr bit 2).
    pub const DIVZERO: FpFlags = FpFlags(1 << 2);
    /// Overflow (`OE`, mxcsr bit 3).
    pub const OVERFLOW: FpFlags = FpFlags(1 << 3);
    /// Underflow (`UE`, mxcsr bit 4): result tiny *and* inexact (masked-mode
    /// x64 semantics).
    pub const UNDERFLOW: FpFlags = FpFlags(1 << 4);
    /// Precision / inexact (`PE`, mxcsr bit 5): the result was rounded. This
    /// is the flag FPVM unmasks to intercept *every* imprecise operation.
    pub const INEXACT: FpFlags = FpFlags(1 << 5);
    /// All six flags.
    pub const ALL: FpFlags = FpFlags(0x3F);

    /// True if no flag is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if every flag in `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: FpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any flag in `other` is set in `self`.
    #[inline]
    pub fn intersects(self, other: FpFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl BitOr for FpFlags {
    type Output = FpFlags;
    #[inline]
    fn bitor(self, rhs: FpFlags) -> FpFlags {
        FpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for FpFlags {
    #[inline]
    fn bitor_assign(&mut self, rhs: FpFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for FpFlags {
    type Output = FpFlags;
    #[inline]
    fn bitand(self, rhs: FpFlags) -> FpFlags {
        FpFlags(self.0 & rhs.0)
    }
}

impl BitAndAssign for FpFlags {
    #[inline]
    fn bitand_assign(&mut self, rhs: FpFlags) {
        self.0 &= rhs.0;
    }
}

impl Not for FpFlags {
    type Output = FpFlags;
    /// Complement within the six defined flag bits.
    #[inline]
    fn not(self) -> FpFlags {
        FpFlags(!self.0 & FpFlags::ALL.0)
    }
}

impl fmt::Display for FpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let names = [
            (FpFlags::INVALID, "IE"),
            (FpFlags::DENORMAL, "DE"),
            (FpFlags::DIVZERO, "ZE"),
            (FpFlags::OVERFLOW, "OE"),
            (FpFlags::UNDERFLOW, "UE"),
            (FpFlags::INEXACT, "PE"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// IEEE 754 rounding modes, matching the `%mxcsr` RC field encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum Round {
    /// Round to nearest, ties to even (RC = 00; the default everywhere).
    #[default]
    NearestEven,
    /// Round toward −∞ (RC = 01).
    Down,
    /// Round toward +∞ (RC = 10).
    Up,
    /// Round toward zero / truncate (RC = 11).
    Zero,
}

impl Round {
    /// Decode from the two-bit mxcsr RC field.
    #[inline]
    pub fn from_rc(rc: u8) -> Round {
        match rc & 3 {
            0 => Round::NearestEven,
            1 => Round::Down,
            2 => Round::Up,
            _ => Round::Zero,
        }
    }

    /// Encode as the two-bit mxcsr RC field.
    #[inline]
    pub fn to_rc(self) -> u8 {
        match self {
            Round::NearestEven => 0,
            Round::Down => 1,
            Round::Up => 2,
            Round::Zero => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_ops() {
        let f = FpFlags::INVALID | FpFlags::INEXACT;
        assert!(f.contains(FpFlags::INVALID));
        assert!(f.contains(FpFlags::INEXACT));
        assert!(!f.contains(FpFlags::OVERFLOW));
        assert!(f.intersects(FpFlags::INEXACT | FpFlags::OVERFLOW));
        assert!(!f.intersects(FpFlags::OVERFLOW));
        assert!(FpFlags::NONE.is_empty());
        assert_eq!(f & FpFlags::INVALID, FpFlags::INVALID);
        assert_eq!(f & !FpFlags::INVALID, FpFlags::INEXACT);
        assert_eq!(!FpFlags::NONE, FpFlags::ALL);
        assert_eq!(f.to_string(), "IE|PE");
        assert_eq!(FpFlags::NONE.to_string(), "-");
    }

    #[test]
    fn mxcsr_bit_positions() {
        // These positions must match mxcsr bits 0..5 exactly; the machine
        // splices FpFlags into mxcsr without translation.
        assert_eq!(FpFlags::INVALID.0, 0x01);
        assert_eq!(FpFlags::DENORMAL.0, 0x02);
        assert_eq!(FpFlags::DIVZERO.0, 0x04);
        assert_eq!(FpFlags::OVERFLOW.0, 0x08);
        assert_eq!(FpFlags::UNDERFLOW.0, 0x10);
        assert_eq!(FpFlags::INEXACT.0, 0x20);
    }

    #[test]
    fn round_rc_roundtrip() {
        for rc in 0..4u8 {
            assert_eq!(Round::from_rc(rc).to_rc(), rc);
        }
    }
}
