//! The shadow-value arena: FPVM's memory manager for alternative-arithmetic
//! values (§4.1 "Shadowing and garbage collection", §4.3 "FPVM also provides
//! the alternative arithmetic system with memory management").
//!
//! Every emulated instruction potentially allocates a fresh shadow value
//! ("this unfortunately leads to significant memory pressure, as every
//! instruction allocates a new cell"). Cells are addressed by the
//! [`ShadowKey`]s that the runtime NaN-boxes into the program's own values.
//! The runtime's mark-and-sweep collector marks keys it discovers by
//! scanning program state, then calls [`ShadowArena::sweep`].

use fpvm_nanbox::ShadowKey;

/// One arena slot: either free (next free-list entry) or occupied.
#[derive(Debug, Clone)]
enum Slot<V> {
    Free { next: Option<u32> },
    Occupied { value: V, marked: bool },
}

/// Statistics maintained by the arena across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total allocations ever performed.
    pub total_allocated: u64,
    /// Total cells freed by sweeps.
    pub total_freed: u64,
    /// Number of sweeps performed.
    pub sweeps: u64,
}

/// A slab arena of shadow values with an embedded free list and mark bits.
///
/// Keys are `slot_index + 1` so that key 0 (an invalid NaN-box payload)
/// never appears, and fit comfortably in the 51-bit NaN payload.
#[derive(Debug)]
pub struct ShadowArena<V> {
    slots: Vec<Slot<V>>,
    free_head: Option<u32>,
    live: usize,
    stats: ArenaStats,
}

impl<V> Default for ShadowArena<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShadowArena<V> {
    /// Create an empty arena.
    pub fn new() -> Self {
        ShadowArena {
            slots: Vec::new(),
            free_head: None,
            live: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Allocate a cell for `value`, returning its key.
    ///
    /// Panics if the arena exceeds the NaN-box key space (2^51 − 1 cells),
    /// which would require ~36 PiB of shadow values — the same practical
    /// impossibility the paper's footnote 4 relies on.
    pub fn alloc(&mut self, value: V) -> ShadowKey {
        self.stats.total_allocated += 1;
        self.live += 1;
        if let Some(idx) = self.free_head {
            let slot = &mut self.slots[idx as usize];
            let next = match slot {
                Slot::Free { next } => *next,
                Slot::Occupied { .. } => unreachable!("corrupt free list"),
            };
            self.free_head = next;
            *slot = Slot::Occupied {
                value,
                marked: false,
            };
            ShadowKey::new(u64::from(idx) + 1).expect("arena key in range")
        } else {
            let idx = self.slots.len();
            self.slots.push(Slot::Occupied {
                value,
                marked: false,
            });
            ShadowKey::new(idx as u64 + 1).expect("arena exceeded NaN-box key space")
        }
    }

    /// Look up a live shadow value. `None` for stale/never-allocated keys —
    /// the "universal NaN" case (§2): a signaling NaN with no live shadow
    /// value is treated as a true NaN.
    pub fn get(&self, key: ShadowKey) -> Option<&V> {
        match self.slots.get((key.raw() - 1) as usize) {
            Some(Slot::Occupied { value, .. }) => Some(value),
            _ => None,
        }
    }

    /// True if the key refers to a live cell.
    pub fn contains(&self, key: ShadowKey) -> bool {
        self.get(key).is_some()
    }

    /// Number of live cells.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slot capacity (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Reset to the fresh-arena state, keeping the slab allocation. Engine
    /// recycling uses this: after a reset the key sequence, free-list
    /// behavior, and statistics are indistinguishable from a brand-new
    /// arena (no free list survives — allocation order must not drift).
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free_head = None;
        self.live = 0;
        self.stats = ArenaStats::default();
    }

    /// Clear all mark bits (start of a GC cycle).
    pub fn clear_marks(&mut self) {
        for slot in &mut self.slots {
            if let Slot::Occupied { marked, .. } = slot {
                *marked = false;
            }
        }
    }

    /// Mark a key discovered by the conservative scan. Returns true if the
    /// key referred to a live cell (i.e. really was a NaN-box).
    pub fn mark(&mut self, key: ShadowKey) -> bool {
        match self.slots.get_mut((key.raw() - 1) as usize) {
            Some(Slot::Occupied { marked, .. }) => {
                *marked = true;
                true
            }
            _ => false,
        }
    }

    /// Sweep: free every unmarked cell. Returns the number freed.
    pub fn sweep(&mut self) -> usize {
        let mut freed = 0;
        for idx in 0..self.slots.len() {
            let free_now = matches!(self.slots[idx], Slot::Occupied { marked: false, .. });
            if free_now {
                self.slots[idx] = Slot::Free {
                    next: self.free_head,
                };
                self.free_head = Some(idx as u32);
                freed += 1;
            }
        }
        self.live -= freed;
        self.stats.total_freed += freed as u64;
        self.stats.sweeps += 1;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get() {
        let mut a = ShadowArena::new();
        let k1 = a.alloc(1.5f64);
        let k2 = a.alloc(2.5f64);
        assert_ne!(k1, k2);
        assert_eq!(a.get(k1), Some(&1.5));
        assert_eq!(a.get(k2), Some(&2.5));
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn keys_are_nonzero_and_boxable() {
        let mut a = ShadowArena::new();
        for i in 0..1000 {
            let k = a.alloc(i);
            assert!(k.raw() >= 1);
            // Round-trips through the NaN-box.
            let bits = fpvm_nanbox::encode(k);
            assert_eq!(fpvm_nanbox::decode(bits), Some(k));
        }
    }

    #[test]
    fn mark_sweep_reuse() {
        let mut a = ShadowArena::new();
        let keys: Vec<_> = (0..100).map(|i| a.alloc(i)).collect();
        assert_eq!(a.live(), 100);
        a.clear_marks();
        // Keep only even-indexed cells.
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert!(a.mark(k));
            }
        }
        assert_eq!(a.sweep(), 50);
        assert_eq!(a.live(), 50);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(a.contains(k), i % 2 == 0);
        }
        // Freed slots are reused before the slab grows.
        let cap = a.capacity();
        for i in 0..50 {
            a.alloc(1000 + i);
        }
        assert_eq!(a.capacity(), cap, "free list must be reused");
        assert_eq!(a.live(), 100);
    }

    #[test]
    fn stale_key_is_universal_nan() {
        let mut a = ShadowArena::new();
        let k = a.alloc(3.0f64);
        a.clear_marks();
        a.sweep();
        assert_eq!(a.get(k), None, "stale key must read as dead");
        // A key that was never allocated.
        let never = ShadowKey::new(999_999).unwrap();
        assert!(!a.contains(never));
    }

    #[test]
    fn stats_accumulate() {
        let mut a = ShadowArena::new();
        for i in 0..10 {
            a.alloc(i);
        }
        a.clear_marks();
        a.sweep();
        let s = a.stats();
        assert_eq!(s.total_allocated, 10);
        assert_eq!(s.total_freed, 10);
        assert_eq!(s.sweeps, 1);
    }
}
