//! # fpvm-arith — alternative arithmetic systems for FPVM
//!
//! This crate implements FPVM's alternative arithmetic interface (§4.3) and
//! the three systems the paper ports to it:
//!
//! * [`vanilla::Vanilla`] — IEEE 64-bit floating point re-implemented in
//!   software with exact flag computation. Running FPVM over Vanilla must be
//!   bit-identical to native execution (the §5.2 validation).
//! * [`bigfloat::BigFloatCtx`] — from-scratch arbitrary-precision binary
//!   floating point with correct rounding: the reproduction's substitute for
//!   GNU MPFR (see DESIGN.md §2 for the substitution argument).
//! * [`posit::PositCtx`] — from-scratch posit arithmetic (posit standard
//!   regime/exponent/fraction encoding), substituting for the Universal
//!   Numbers Library.
//!
//! It also hosts [`softfp`], the exact-flags IEEE engine that doubles as the
//! simulated machine's FPU, [`arena::ShadowArena`], the shadow-value slab
//! that the runtime's garbage collector manages, and [`adaptive::AdaptiveCtx`]
//! — the "adaptive precision version" §4.3 flags as future work,
//! implemented here with significance tracking.

#![forbid(unsafe_code)]
// The 37-function interface takes `&self` on `from_*` constructors by
// design (it is the paper's pluggable-system interface, not a type's
// inherent constructor set).
#![allow(clippy::wrong_self_convention)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod arena;
pub mod bigfloat;
pub mod flags;
pub mod posit;
pub mod softfp;
pub mod system;
pub mod vanilla;

pub use adaptive::{AdaptiveCtx, AdaptiveValue};
pub use arena::{ArenaStats, ShadowArena};
pub use bigfloat::{BigFloat, BigFloatCtx};
pub use flags::{FpFlags, Round};
pub use posit::{Posit, PositCtx};
pub use softfp::CmpResult;
pub use system::{ArithSystem, ScalarOp};
pub use vanilla::Vanilla;
