//! The alternative arithmetic interface (FPVM §4.3).
//!
//! The paper's interface consists of exactly **37 scalar functions** — 23
//! arithmetic operations, 10 conversions, and 4 comparisons — plus memory
//! management (provided here by [`crate::arena::ShadowArena`], which FPVM
//! owns on behalf of the arithmetic system). The emulator handles vector
//! instructions by calling the scalar functions once per lane, so nothing in
//! this trait is lane-aware.
//!
//! Conversions and comparisons are "the hairiest part of the interface"
//! because they must match implicit inputs (rounding mode) and outputs
//! (flags register); every method therefore takes a [`Round`] where relevant
//! and returns the [`FpFlags`] the equivalent hardware instruction would
//! have produced, so the runtime can reflect them into the guest `%mxcsr`
//! and `%rflags`.

use crate::flags::{FpFlags, Round};
use crate::softfp::CmpResult;

/// A pluggable alternative arithmetic system.
///
/// Implementations in this crate: [`crate::vanilla::Vanilla`] (IEEE f64
/// re-implemented in software — validation), [`crate::bigfloat::BigFloatCtx`]
/// (arbitrary-precision binary floating point — the MPFR stand-in) and
/// [`crate::posit::PositCtx`] (posit arithmetic).
pub trait ArithSystem: Send + Sync {
    /// The shadow-value representation.
    type Value: Clone + Send + Sync + std::fmt::Debug + 'static;

    /// Human-readable system name ("vanilla", "bigfloat200", "posit64", …).
    fn name(&self) -> String;

    // ---- conversions (10) ------------------------------------------------

    /// Promote an IEEE double into the system.
    fn from_f64(&self, x: f64) -> Self::Value;
    /// Demote to an IEEE double (used when a shadowed value must escape:
    /// printf, serialization, correctness traps).
    fn to_f64(&self, v: &Self::Value, rm: Round) -> (f64, FpFlags);
    /// Promote an IEEE single (`cvtss2sd` semantics: DENORMAL on a
    /// subnormal input, INVALID + quieting on a signaling NaN).
    fn from_f32(&self, x: f32) -> (Self::Value, FpFlags);
    /// Demote to an IEEE single.
    fn to_f32(&self, v: &Self::Value, rm: Round) -> (f32, FpFlags);
    /// Convert from a 32-bit signed integer (`cvtsi2sd` semantics).
    fn from_i32(&self, x: i32) -> (Self::Value, FpFlags);
    /// Convert from a 64-bit signed integer.
    fn from_i64(&self, x: i64) -> (Self::Value, FpFlags);
    /// Truncating conversion to i32 (`cvttsd2si` semantics: `IE` + integer
    /// indefinite on NaN / out of range).
    fn to_i32(&self, v: &Self::Value) -> (i32, FpFlags);
    /// Truncating conversion to i64.
    fn to_i64(&self, v: &Self::Value) -> (i64, FpFlags);
    /// Convert from a 64-bit unsigned integer.
    fn from_u64(&self, x: u64) -> (Self::Value, FpFlags);
    /// Truncating conversion to u64.
    fn to_u64(&self, v: &Self::Value) -> (u64, FpFlags);

    // ---- arithmetic (23) -------------------------------------------------

    /// Addition.
    fn add(&self, a: &Self::Value, b: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Subtraction.
    fn sub(&self, a: &Self::Value, b: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Multiplication.
    fn mul(&self, a: &Self::Value, b: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Division.
    fn div(&self, a: &Self::Value, b: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Fused multiply-add `a*b + c`.
    fn fma(
        &self,
        a: &Self::Value,
        b: &Self::Value,
        c: &Self::Value,
        rm: Round,
    ) -> (Self::Value, FpFlags);
    /// Square root.
    fn sqrt(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Minimum with x64 `minsd` operand semantics.
    fn min(&self, a: &Self::Value, b: &Self::Value) -> (Self::Value, FpFlags);
    /// Maximum with x64 `maxsd` operand semantics.
    fn max(&self, a: &Self::Value, b: &Self::Value) -> (Self::Value, FpFlags);
    /// Negation (exact).
    fn neg(&self, a: &Self::Value) -> (Self::Value, FpFlags);
    /// Absolute value (exact).
    fn abs(&self, a: &Self::Value) -> (Self::Value, FpFlags);
    /// Sine.
    fn sin(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Cosine.
    fn cos(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Tangent.
    fn tan(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Arcsine.
    fn asin(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Arccosine.
    fn acos(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Arctangent.
    fn atan(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Two-argument arctangent.
    fn atan2(&self, y: &Self::Value, x: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Natural exponential.
    fn exp(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Natural logarithm.
    fn log(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Base-10 logarithm.
    fn log10(&self, a: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Power `a^b`.
    fn pow(&self, a: &Self::Value, b: &Self::Value, rm: Round) -> (Self::Value, FpFlags);
    /// Round toward −∞ to an integral value (exact).
    fn floor(&self, a: &Self::Value) -> (Self::Value, FpFlags);
    /// Round toward +∞ to an integral value (exact).
    fn ceil(&self, a: &Self::Value) -> (Self::Value, FpFlags);

    // ---- comparisons (4) -------------------------------------------------

    /// Quiet compare (`ucomisd`): `IE` only on signaling/NaR inputs.
    fn cmp_quiet(&self, a: &Self::Value, b: &Self::Value) -> (CmpResult, FpFlags);
    /// Signaling compare (`comisd`): `IE` on any unordered input.
    fn cmp_signaling(&self, a: &Self::Value, b: &Self::Value) -> (CmpResult, FpFlags);
    /// Equality test (quiet; unordered compares unequal).
    fn cmp_eq(&self, a: &Self::Value, b: &Self::Value) -> (bool, FpFlags) {
        let (r, f) = self.cmp_quiet(a, b);
        (r == CmpResult::Equal, f)
    }
    /// Unordered test: true if either operand is NaN/NaR.
    fn is_unordered(&self, a: &Self::Value, b: &Self::Value) -> (bool, FpFlags) {
        let (r, f) = self.cmp_quiet(a, b);
        (r == CmpResult::Unordered, f)
    }

    /// True if the value is the system's NaN/NaR ("universal NaN", §2).
    fn is_nan(&self, a: &Self::Value) -> bool {
        matches!(self.cmp_quiet(a, a), (CmpResult::Unordered, _))
    }

    /// Render a value for the output wrapper (printf interposition, §2
    /// "printing problem"). Default renders the demoted double.
    fn render(&self, v: &Self::Value) -> String {
        let (x, _) = self.to_f64(v, Round::NearestEven);
        format!("{x:?}")
    }
}

/// The scalar operation vocabulary of the emulator: the "hundreds of
/// different x64 floating point instructions flatten down to about 40
/// operation types" (§4.1). The emulator maps each decoded instruction to
/// one of these and dispatches through an `op_map` to the [`ArithSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ScalarOp {
    Add,
    Sub,
    Mul,
    Div,
    Fma,
    Sqrt,
    Min,
    Max,
    Neg,
    Abs,
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Atan2,
    Exp,
    Log,
    Log10,
    Pow,
    Floor,
    Ceil,
    CmpQuiet,
    CmpSignaling,
    CvtI32ToF,
    CvtI64ToF,
    CvtFToI32,
    CvtFToI64,
    CvtFToF32,
    CvtF32ToF,
    Mov,
}

impl ScalarOp {
    /// Number of floating-point input operands the op consumes.
    pub fn arity(self) -> usize {
        use ScalarOp::*;
        match self {
            Fma => 3,
            Add | Sub | Mul | Div | Min | Max | Atan2 | Pow | CmpQuiet | CmpSignaling => 2,
            _ => 1,
        }
    }
}
