//! **Posit** arithmetic (§4.3 "Posit"), substituting for the Universal
//! Numbers Library: "A posit number has four parts which include sign,
//! regime, exponent and fraction. Among the four, exponent and fraction have
//! variable length."
//!
//! [`Posit<N, ES>`] implements posits of width `N ≤ 64` with `ES` exponent
//! bits. Encoding follows the posit standard: a sign bit, a unary-coded
//! regime, `ES` exponent bits, and the remaining bits of fraction; negative
//! values are the two's complement of the bit pattern; `10…0` is NaR
//! (not-a-real) and `0` is the unique zero. Rounding is round-to-nearest
//! (even) on the bit pattern, saturating at ±maxpos / ±minpos — posits never
//! round to zero, NaR, or infinity.
//!
//! Flag mapping for FPVM integration: posits themselves are flag-free, but
//! the runtime needs to know when results were rounded (`PE`) or invalid
//! (`IE` on NaR production), so operations report [`FpFlags`] equivalents.
//!
//! Transcendentals are evaluated through `f64` (a documented approximation;
//! soft-posit libraries of the paper's era did the same for most of libm).

use crate::flags::{FpFlags, Round};
use crate::softfp::CmpResult;
use crate::system::ArithSystem;

/// A posit of `N` bits with `ES` exponent bits, stored in the low `N` bits
/// of a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posit<const N: u32, const ES: u32>(u64);

/// 8-bit posit, es = 0 (classic Type III sizing).
pub type Posit8 = Posit<8, 0>;
/// 16-bit posit, es = 1.
pub type Posit16 = Posit<16, 1>;
/// 32-bit posit, es = 2.
pub type Posit32 = Posit<32, 2>;
/// 64-bit posit, es = 3.
pub type Posit64 = Posit<64, 3>;

/// A decoded (unpacked) posit: `value = (-1)^sign × (frac / 2^63) × 2^scale`
/// with the hidden bit at position 63, i.e. `frac ∈ [2^63, 2^64)`.
#[derive(Debug, Clone, Copy)]
struct Unpacked {
    sign: bool,
    scale: i32,
    frac: u64,
}

/// Result of truncating a posit toward zero ([`Posit::trunc_magnitude`]).
enum PositTrunc {
    /// NaR input.
    Nar,
    /// Zero input.
    Zero,
    /// Magnitude fits in a u128; `inexact` if fraction bits were dropped.
    Val {
        sign: bool,
        mag: u128,
        inexact: bool,
    },
    /// Magnitude ≥ 2^128 — out of range for every integer target here.
    Huge,
}

impl<const N: u32, const ES: u32> Posit<N, ES> {
    const MASK: u64 = if N == 64 { u64::MAX } else { (1u64 << N) - 1 };
    const SIGN_BIT: u64 = 1u64 << (N - 1);
    /// Maximum regime magnitude and hence scale bound: ±(N−2)·2^ES.
    const MAX_SCALE: i32 = ((N - 2) as i32) << ES;

    /// Zero.
    pub const ZERO: Self = Posit(0);
    /// NaR (not-a-real): the pattern `10…0`.
    pub const NAR: Self = Posit(Self::SIGN_BIT);

    /// Construct from a raw bit pattern (low `N` bits).
    pub fn from_bits(bits: u64) -> Self {
        Posit(bits & Self::MASK)
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// True for NaR.
    pub fn is_nar(self) -> bool {
        self.0 == Self::SIGN_BIT
    }

    /// True for zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Largest finite posit.
    pub fn maxpos() -> Self {
        Posit(Self::SIGN_BIT - 1)
    }

    /// Smallest positive posit.
    pub fn minpos() -> Self {
        Posit(1)
    }

    fn decode(self) -> Option<Unpacked> {
        if self.is_zero() || self.is_nar() {
            return None;
        }
        let sign = self.0 & Self::SIGN_BIT != 0;
        let mag = if sign {
            (self.0.wrapping_neg()) & Self::MASK
        } else {
            self.0
        };
        // Left-align the N-1 bits after the sign into a u64 for scanning.
        let stream = mag << (64 - (N - 1)); // MSB = first regime bit
        let first = stream >> 63 & 1;
        let run = if first == 1 {
            (!stream).leading_zeros().min(N - 1)
        } else {
            stream.leading_zeros().min(N - 1)
        };
        let r: i32 = if first == 1 {
            run as i32 - 1
        } else {
            -(run as i32)
        };
        // Bits consumed: run + 1 terminator (unless the regime filled all
        // N-1 bits).
        let consumed = (run + 1).min(N - 1);
        let rest = if consumed >= 64 {
            0
        } else {
            stream << consumed
        };
        // ES exponent bits (may be truncated by the field running out; the
        // missing low bits are zero by the standard).
        let e = if ES == 0 {
            0
        } else {
            (rest >> (64 - ES)) as i32
        };
        let frac_bits = if ES >= 64 { 0 } else { rest << ES };
        let scale = (r << ES) + e;
        // Hidden bit at 63: 1.frac.
        let frac = (1u64 << 63) | (frac_bits >> 1);
        Some(Unpacked { sign, scale, frac })
    }

    /// Round-and-encode an unpacked value (+ sticky residue) into a posit.
    /// Returns the posit and whether rounding was inexact.
    fn encode(sign: bool, scale: i32, frac: u64, sticky: bool) -> (Self, bool) {
        debug_assert!(frac >> 63 == 1, "hidden bit must be normalized");
        if scale > Self::MAX_SCALE {
            let p = Self::maxpos();
            return (if sign { p.negate() } else { p }, true);
        }
        if scale < -Self::MAX_SCALE {
            let p = Self::minpos();
            return (if sign { p.negate() } else { p }, true);
        }
        let es = ES as i32;
        let r = scale >> es; // floor division (es may be 0)
        let e = scale - (r << es);
        debug_assert!((0..(1 << ES.max(1))).contains(&(e as u64 as i64 as i32)) || ES == 0);
        let rlen = if r >= 0 {
            r as u32 + 2
        } else {
            (-r) as u32 + 1
        };
        // Stream bit i (0-based, after the sign bit).
        let stream_bit = |i: u32| -> bool {
            if i < rlen {
                if r >= 0 {
                    i < r as u32 + 1
                } else {
                    i >= (-r) as u32
                }
            } else if i < rlen + ES {
                let k = i - rlen; // 0 = MSB of exponent
                (e >> (ES - 1 - k)) & 1 == 1
            } else {
                let k = i - rlen - ES; // 0 = first fraction bit (below hidden)
                k < 63 && (frac >> (62 - k)) & 1 == 1
            }
        };
        let navail = N - 1;
        let mut body = 0u64;
        for i in 0..navail {
            body = (body << 1) | u64::from(stream_bit(i));
        }
        let round = stream_bit(navail);
        let mut st = sticky;
        if !st {
            let total = rlen + ES + 63;
            let mut i = navail + 1;
            while i < total {
                if stream_bit(i) {
                    st = true;
                    break;
                }
                i += 1;
            }
        }
        let inexact = round || st;
        let mut p = body;
        if round && (st || p & 1 == 1) {
            p += 1;
        }
        // Saturate: never round to NaR or to zero.
        if p >= Self::SIGN_BIT {
            p = Self::SIGN_BIT - 1;
        }
        if p == 0 {
            p = 1;
        }
        let out = if sign {
            Posit((p.wrapping_neg()) & Self::MASK)
        } else {
            Posit(p)
        };
        (out, inexact)
    }

    /// Exact negation (posits negate by two's complement).
    pub fn negate(self) -> Self {
        if self.is_nar() || self.is_zero() {
            return self;
        }
        Posit((self.0.wrapping_neg()) & Self::MASK)
    }

    /// Absolute value.
    pub fn abs_val(self) -> Self {
        if self.0 & Self::SIGN_BIT != 0 && !self.is_nar() {
            self.negate()
        } else {
            self
        }
    }

    /// Decompose into `(sign, scale, frac)` with the hidden bit at
    /// position 63 (`frac ∈ [2^63, 2^64)`), so `|v| = frac × 2^(scale−63)`.
    /// `None` for zero and NaR.
    pub fn to_parts(self) -> Option<(bool, i32, u64)> {
        self.decode().map(|u| (u.sign, u.scale, u.frac))
    }

    /// Truncate toward zero directly from the significand — no f64
    /// intermediate, so wide posits (e.g. posit64es3 values with more
    /// than 53 significant bits) convert with a single rounding.
    fn trunc_magnitude(self) -> PositTrunc {
        if self.is_nar() {
            return PositTrunc::Nar;
        }
        let Some(u) = self.decode() else {
            return PositTrunc::Zero;
        };
        if u.scale < 0 {
            // |v| < 1, nonzero: truncates to 0, inexactly.
            return PositTrunc::Val {
                sign: u.sign,
                mag: 0,
                inexact: true,
            };
        }
        if u.scale > 127 {
            // Beyond u128; out of range for every 64-bit target.
            return PositTrunc::Huge;
        }
        if u.scale <= 63 {
            let shift = 63 - u.scale; // 0..=63
            PositTrunc::Val {
                sign: u.sign,
                mag: u128::from(u.frac >> shift),
                inexact: shift > 0 && u.frac & ((1u64 << shift) - 1) != 0,
            }
        } else {
            PositTrunc::Val {
                sign: u.sign,
                mag: u128::from(u.frac) << (u.scale - 63),
                inexact: false,
            }
        }
    }

    /// Convert to `f64` (exact for N ≤ 54 + ES; single rounding otherwise).
    pub fn to_f64(self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if self.is_nar() {
            return f64::NAN;
        }
        let u = self.decode().expect("nonzero, non-NaR");
        let m = u.frac as f64; // one rounding (64 → 53 bits)
        let v = m * (u.scale - 63).exp2_i();
        if u.sign {
            -v
        } else {
            v
        }
    }

    /// Convert from `f64` with posit rounding. NaN/±∞ → NaR.
    pub fn from_f64(x: f64) -> Self {
        if x == 0.0 {
            return Self::ZERO;
        }
        if x.is_nan() || x.is_infinite() {
            return Self::NAR;
        }
        let bits = x.to_bits();
        let sign = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7FF) as i32;
        let frac52 = bits & 0x000F_FFFF_FFFF_FFFF;
        let (mant, scale) = if biased == 0 {
            // Subnormal: normalize.
            let lz = frac52.leading_zeros(); // ≥ 12
            (frac52 << (lz - 11) << 11, -1022 - (lz as i32 - 11))
        } else {
            ((frac52 | (1 << 52)) << 11, biased - 1023)
        };
        Self::encode(sign, scale, mant, false).0
    }

    /// Addition with posit rounding.
    pub fn add_p(self, other: Self) -> (Self, FpFlags) {
        if self.is_nar() || other.is_nar() {
            return (Self::NAR, FpFlags::NONE);
        }
        if self.is_zero() {
            return (other, FpFlags::NONE);
        }
        if other.is_zero() {
            return (self, FpFlags::NONE);
        }
        let a = self.decode().unwrap();
        let b = other.decode().unwrap();
        // Order by magnitude.
        let (x, y) = if (a.scale, a.frac) >= (b.scale, b.frac) {
            (a, b)
        } else {
            (b, a)
        };
        let d = (x.scale - y.scale) as u32;
        let xw = u128::from(x.frac) << 63; // hidden bit at 126
        let (yw, mut sticky) = if d >= 127 {
            (0u128, true)
        } else {
            let shifted = (u128::from(y.frac) << 63) >> d;
            let lost = if d == 0 {
                false
            } else {
                (u128::from(y.frac) << 63) & ((1u128 << d) - 1) != 0
            };
            (shifted, lost)
        };
        let (sum, sign) = if x.sign == y.sign {
            (xw + yw, x.sign)
        } else {
            let mut s = xw - yw;
            if sticky && s > 0 {
                s -= 1;
            }
            (s, x.sign)
        };
        if sum == 0 {
            if sticky {
                // Tiny residue: rounds to minpos-with-sign (posits never
                // round a nonzero value to zero).
                let p = Self::minpos();
                return (if sign { p.negate() } else { p }, FpFlags::INEXACT);
            }
            return (Self::ZERO, FpFlags::NONE);
        }
        let lz = sum.leading_zeros();
        // Normalize hidden bit to u128 bit 126... then take the top 64 bits.
        let msb = 127 - lz; // current position of the MSB
        let scale = x.scale + msb as i32 - 126;
        let frac;
        if msb >= 63 {
            let cut = msb - 63;
            frac = (sum >> cut) as u64;
            if cut > 0 && sum & ((1u128 << cut) - 1) != 0 {
                sticky = true;
            }
        } else {
            frac = (sum as u64) << (63 - msb);
        }
        let (r, inexact) = Self::encode(sign, scale, frac, sticky);
        (r, pe(inexact))
    }

    /// Subtraction.
    pub fn sub_p(self, other: Self) -> (Self, FpFlags) {
        self.add_p(other.negate())
    }

    /// Multiplication with posit rounding.
    pub fn mul_p(self, other: Self) -> (Self, FpFlags) {
        if self.is_nar() || other.is_nar() {
            return (Self::NAR, FpFlags::NONE);
        }
        if self.is_zero() || other.is_zero() {
            return (Self::ZERO, FpFlags::NONE);
        }
        let a = self.decode().unwrap();
        let b = other.decode().unwrap();
        let p = u128::from(a.frac) * u128::from(b.frac); // MSB at 127 or 126
        let sign = a.sign != b.sign;
        let (frac, scale, sticky) = if p >> 127 == 1 {
            (
                (p >> 64) as u64,
                a.scale + b.scale + 1,
                p & ((1u128 << 64) - 1) != 0,
            )
        } else {
            (
                (p >> 63) as u64,
                a.scale + b.scale,
                p & ((1u128 << 63) - 1) != 0,
            )
        };
        let (r, inexact) = Self::encode(sign, scale, frac, sticky);
        (r, pe(inexact))
    }

    /// Division with posit rounding. `x / 0 = NaR` (with `IE|ZE` reported
    /// for the runtime's benefit).
    pub fn div_p(self, other: Self) -> (Self, FpFlags) {
        if self.is_nar() || other.is_nar() {
            return (Self::NAR, FpFlags::NONE);
        }
        if other.is_zero() {
            return (
                Self::NAR,
                if self.is_zero() {
                    FpFlags::INVALID
                } else {
                    FpFlags::DIVZERO
                },
            );
        }
        if self.is_zero() {
            return (Self::ZERO, FpFlags::NONE);
        }
        let a = self.decode().unwrap();
        let b = other.decode().unwrap();
        let sign = a.sign != b.sign;
        // a/b = (fa/fb) × 2^(sa−sb) with fa/fb ∈ (1/2, 2).
        // q = fa·2^64/fb ∈ (2^63, 2^65): if q ≥ 2^64 the quotient's hidden
        // bit is at 64 → value = (q/2)·2^(scale−63) with scale = sa−sb;
        // otherwise the hidden bit is at 63 → scale = sa−sb−1.
        let num = u128::from(a.frac) << 64;
        let q = num / u128::from(b.frac);
        let rem = num % u128::from(b.frac);
        let mut sticky = rem != 0;
        let (frac, scale) = if q >> 64 != 0 {
            if q & 1 != 0 {
                sticky = true;
            }
            ((q >> 1) as u64, a.scale - b.scale)
        } else {
            (q as u64, a.scale - b.scale - 1)
        };
        let (r, inexact) = Self::encode(sign, scale, frac, sticky);
        (r, pe(inexact))
    }

    /// Square root with posit rounding. `sqrt(negative) = NaR`.
    pub fn sqrt_p(self) -> (Self, FpFlags) {
        if self.is_nar() {
            return (Self::NAR, FpFlags::NONE);
        }
        if self.is_zero() {
            return (Self::ZERO, FpFlags::NONE);
        }
        let a = self.decode().unwrap();
        if a.sign {
            return (Self::NAR, FpFlags::INVALID);
        }
        // value = frac × 2^(scale − 63). Make the exponent even:
        // m = frac << (63 + (scale parity)), result = isqrt(m) × 2^(scale'/2).
        let odd = a.scale.rem_euclid(2) == 1;
        let m: u128 = if odd {
            u128::from(a.frac) << 64
        } else {
            u128::from(a.frac) << 63
        };
        let scale2 = if odd { (a.scale - 1) / 2 } else { a.scale / 2 };
        let s = isqrt_u128(m); // ≈ 2^63,  in [2^63, 2^64)
        let sticky = s * s != m;
        let (r, inexact) = Self::encode(false, scale2, s as u64, sticky);
        (r, pe(inexact))
    }

    /// Total-order comparison: posits compare as two's-complement integers.
    /// NaR is unordered here (mapped to the IEEE compare contract).
    pub fn cmp_p(self, other: Self) -> CmpResult {
        if self.is_nar() || other.is_nar() {
            return CmpResult::Unordered;
        }
        let a = sign_extend::<N>(self.0);
        let b = sign_extend::<N>(other.0);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => CmpResult::Less,
            std::cmp::Ordering::Equal => CmpResult::Equal,
            std::cmp::Ordering::Greater => CmpResult::Greater,
        }
    }
}

fn pe(inexact: bool) -> FpFlags {
    if inexact {
        FpFlags::INEXACT
    } else {
        FpFlags::NONE
    }
}

fn sign_extend<const N: u32>(bits: u64) -> i64 {
    ((bits << (64 - N)) as i64) >> (64 - N)
}

/// Integer square root of a u128 (Newton, f64 seed).
fn isqrt_u128(n: u128) -> u128 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u128 + 2;
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            break;
        }
        x = y;
    }
    while x * x > n {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    x
}

/// Exact power-of-two helper (`exp2` on an i32 without rounding concerns).
trait Exp2I {
    fn exp2_i(self) -> f64;
}
impl Exp2I for i32 {
    fn exp2_i(self) -> f64 {
        // f64 covers 2^±1074 comfortably beyond any posit-64 scale (±1984
        // exceeds it!). posit64 es=3 scales reach ±496·8 = ±3968... those
        // magnitudes exceed f64 range; split the scaling to stay finite.
        if self > 1023 {
            f64::INFINITY
        } else if self < -1074 {
            0.0
        } else if self >= -1022 {
            f64::from_bits(((self + 1023) as u64) << 52)
        } else {
            // Subnormal range: 2^self = 2^-1022 × 2^(self+1022).
            f64::from_bits(1u64 << (52 + 1022 + self).max(0))
        }
    }
}

// ---------------------------------------------------------------------------
// ArithSystem binding
// ---------------------------------------------------------------------------

/// The posit [`ArithSystem`] binding (the paper's ~350-line Universal
/// binding). Transcendentals route through `f64`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PositCtx<const N: u32, const ES: u32>;

/// 32-bit posit context.
pub type Posit32Ctx = PositCtx<32, 2>;
/// 64-bit posit context.
pub type Posit64Ctx = PositCtx<64, 3>;

impl<const N: u32, const ES: u32> PositCtx<N, ES> {
    fn via_f64(&self, f: impl Fn(f64) -> f64, a: &Posit<N, ES>) -> (Posit<N, ES>, FpFlags) {
        let x = a.to_f64();
        let r = f(x);
        let p = Posit::<N, ES>::from_f64(r);
        let flags = if r.is_nan() && !x.is_nan() {
            FpFlags::INVALID
        } else {
            FpFlags::INEXACT
        };
        (p, flags)
    }
}

impl<const N: u32, const ES: u32> ArithSystem for PositCtx<N, ES> {
    type Value = Posit<N, ES>;

    fn name(&self) -> String {
        format!("posit{N}es{ES}")
    }

    fn from_f64(&self, x: f64) -> Posit<N, ES> {
        Posit::from_f64(x)
    }
    fn to_f64(&self, v: &Posit<N, ES>, _rm: Round) -> (f64, FpFlags) {
        (v.to_f64(), FpFlags::NONE)
    }
    fn from_f32(&self, x: f32) -> (Posit<N, ES>, FpFlags) {
        let p = Posit::from_f64(f64::from(x));
        let flags = if p.is_nar() || p.to_f64() == f64::from(x) {
            FpFlags::NONE
        } else {
            FpFlags::INEXACT
        };
        (p, flags)
    }
    fn to_f32(&self, v: &Posit<N, ES>, _rm: Round) -> (f32, FpFlags) {
        crate::softfp::cvt_f64_to_f32(v.to_f64())
    }
    fn from_i32(&self, x: i32) -> (Posit<N, ES>, FpFlags) {
        (Posit::from_f64(f64::from(x)), FpFlags::NONE)
    }
    fn from_i64(&self, x: i64) -> (Posit<N, ES>, FpFlags) {
        let p = Posit::from_f64(x as f64);
        let flags = if (x as f64) as i128 == i128::from(x) {
            FpFlags::NONE
        } else {
            FpFlags::INEXACT
        };
        (p, flags)
    }
    // The truncating conversions go directly through the posit significand
    // (`trunc_magnitude`), not via `to_f64()`: posit64es3 carries up to
    // ~58 fraction bits mid-range, so an f64 intermediate would round
    // twice and misreport INVALID/INEXACT near the integer boundaries.
    fn to_i32(&self, v: &Posit<N, ES>) -> (i32, FpFlags) {
        match v.trunc_magnitude() {
            PositTrunc::Nar | PositTrunc::Huge => (i32::MIN, FpFlags::INVALID),
            PositTrunc::Zero => (0, FpFlags::NONE),
            PositTrunc::Val { sign, mag, inexact } => {
                let limit = if sign { 1u128 << 31 } else { (1u128 << 31) - 1 };
                if mag > limit {
                    return (i32::MIN, FpFlags::INVALID);
                }
                let val = if sign {
                    (mag as u32).wrapping_neg() as i32
                } else {
                    mag as i32
                };
                (val, pe(inexact))
            }
        }
    }
    fn to_i64(&self, v: &Posit<N, ES>) -> (i64, FpFlags) {
        match v.trunc_magnitude() {
            PositTrunc::Nar | PositTrunc::Huge => (i64::MIN, FpFlags::INVALID),
            PositTrunc::Zero => (0, FpFlags::NONE),
            PositTrunc::Val { sign, mag, inexact } => {
                let limit = if sign { 1u128 << 63 } else { (1u128 << 63) - 1 };
                if mag > limit {
                    return (i64::MIN, FpFlags::INVALID);
                }
                let val = if sign {
                    (mag as u64).wrapping_neg() as i64
                } else {
                    mag as i64
                };
                (val, pe(inexact))
            }
        }
    }
    fn from_u64(&self, x: u64) -> (Posit<N, ES>, FpFlags) {
        (Posit::from_f64(x as f64), FpFlags::NONE)
    }
    fn to_u64(&self, v: &Posit<N, ES>) -> (u64, FpFlags) {
        match v.trunc_magnitude() {
            PositTrunc::Nar | PositTrunc::Huge => (u64::MAX, FpFlags::INVALID),
            PositTrunc::Zero => (0, FpFlags::NONE),
            PositTrunc::Val { sign, mag, inexact } => {
                if (sign && mag != 0) || mag > u128::from(u64::MAX) {
                    return (u64::MAX, FpFlags::INVALID);
                }
                (mag as u64, pe(inexact))
            }
        }
    }

    fn add(&self, a: &Posit<N, ES>, b: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        a.add_p(*b)
    }
    fn sub(&self, a: &Posit<N, ES>, b: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        a.sub_p(*b)
    }
    fn mul(&self, a: &Posit<N, ES>, b: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        a.mul_p(*b)
    }
    fn div(&self, a: &Posit<N, ES>, b: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        a.div_p(*b)
    }
    fn fma(
        &self,
        a: &Posit<N, ES>,
        b: &Posit<N, ES>,
        c: &Posit<N, ES>,
        rm: Round,
    ) -> (Posit<N, ES>, FpFlags) {
        // Not fused (no quire in this port — see DESIGN.md future work).
        let (p, f1) = self.mul(a, b, rm);
        let (s, f2) = self.add(&p, c, rm);
        (s, f1 | f2)
    }
    fn sqrt(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        a.sqrt_p()
    }
    fn min(&self, a: &Posit<N, ES>, b: &Posit<N, ES>) -> (Posit<N, ES>, FpFlags) {
        match a.cmp_p(*b) {
            CmpResult::Unordered => (*b, FpFlags::INVALID),
            CmpResult::Less => (*a, FpFlags::NONE),
            _ => (*b, FpFlags::NONE),
        }
    }
    fn max(&self, a: &Posit<N, ES>, b: &Posit<N, ES>) -> (Posit<N, ES>, FpFlags) {
        match a.cmp_p(*b) {
            CmpResult::Unordered => (*b, FpFlags::INVALID),
            CmpResult::Greater => (*a, FpFlags::NONE),
            _ => (*b, FpFlags::NONE),
        }
    }
    fn neg(&self, a: &Posit<N, ES>) -> (Posit<N, ES>, FpFlags) {
        (a.negate(), FpFlags::NONE)
    }
    fn abs(&self, a: &Posit<N, ES>) -> (Posit<N, ES>, FpFlags) {
        (a.abs_val(), FpFlags::NONE)
    }

    fn sin(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::sin, a)
    }
    fn cos(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::cos, a)
    }
    fn tan(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::tan, a)
    }
    fn asin(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::asin, a)
    }
    fn acos(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::acos, a)
    }
    fn atan(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::atan, a)
    }
    fn atan2(&self, y: &Posit<N, ES>, x: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        let r = y.to_f64().atan2(x.to_f64());
        (Posit::from_f64(r), FpFlags::INEXACT)
    }
    fn exp(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::exp, a)
    }
    fn log(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::ln, a)
    }
    fn log10(&self, a: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        self.via_f64(f64::log10, a)
    }
    fn pow(&self, a: &Posit<N, ES>, b: &Posit<N, ES>, _rm: Round) -> (Posit<N, ES>, FpFlags) {
        let r = a.to_f64().powf(b.to_f64());
        let flags = if r.is_nan() && !a.to_f64().is_nan() && !b.to_f64().is_nan() {
            FpFlags::INVALID
        } else {
            FpFlags::INEXACT
        };
        (Posit::from_f64(r), flags)
    }
    fn floor(&self, a: &Posit<N, ES>) -> (Posit<N, ES>, FpFlags) {
        (Posit::from_f64(a.to_f64().floor()), FpFlags::NONE)
    }
    fn ceil(&self, a: &Posit<N, ES>) -> (Posit<N, ES>, FpFlags) {
        (Posit::from_f64(a.to_f64().ceil()), FpFlags::NONE)
    }

    fn cmp_quiet(&self, a: &Posit<N, ES>, b: &Posit<N, ES>) -> (CmpResult, FpFlags) {
        (a.cmp_p(*b), FpFlags::NONE)
    }
    fn cmp_signaling(&self, a: &Posit<N, ES>, b: &Posit<N, ES>) -> (CmpResult, FpFlags) {
        let r = a.cmp_p(*b);
        let f = if r == CmpResult::Unordered {
            FpFlags::INVALID
        } else {
            FpFlags::NONE
        };
        (r, f)
    }

    fn is_nan(&self, a: &Posit<N, ES>) -> bool {
        a.is_nar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_posit32_encodings() {
        // posit32 es=2: 1.0 = 0x40000000.
        assert_eq!(Posit32::from_f64(1.0).bits(), 0x4000_0000);
        assert_eq!(Posit32::from_f64(-1.0).bits(), 0xC000_0000);
        // 2.0: scale 1 → regime "10", exp "01" → 0b0_10_01_0… = 0x48000000.
        assert_eq!(Posit32::from_f64(2.0).bits(), 0x4800_0000);
        // 0.5: scale −1 → regime "01", exp "11" → 0b0_01_11_0… = 0x38000000.
        assert_eq!(Posit32::from_f64(0.5).bits(), 0x3800_0000);
        // 4.0: scale 2 → regime "10", exp "10" → 0x50000000.
        assert_eq!(Posit32::from_f64(4.0).bits(), 0x5000_0000);
        // 16.0: scale 4 → regime "110", exp "00" → 0x60000000.
        assert_eq!(Posit32::from_f64(16.0).bits(), 0x6000_0000);
        assert_eq!(Posit32::from_f64(0.0).bits(), 0);
        assert_eq!(Posit32::from_f64(f64::NAN).bits(), 0x8000_0000);
    }

    #[test]
    fn f64_roundtrip_exact_for_small() {
        for x in [
            0.0, 1.0, -1.0, 2.0, -2.0, 0.5, 1.5, 3.25, -3.25, 100.0, 1e-4, 12345.678,
        ] {
            let p = Posit32::from_f64(x);
            let back = p.to_f64();
            let p2 = Posit32::from_f64(back);
            assert_eq!(p.bits(), p2.bits(), "posit32 roundtrip of {x}");
        }
        // Values exactly representable in posit32 roundtrip exactly.
        for x in [1.0, 2.0, 0.5, 0.25, 3.0, 1.375] {
            assert_eq!(Posit32::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn arithmetic_matches_f64_when_exact() {
        type P = Posit64;
        for (a, b) in [(1.0, 2.0), (3.5, -1.25), (0.5, 0.125), (-7.0, -9.0)] {
            let (s, f) = P::from_f64(a).add_p(P::from_f64(b));
            assert_eq!(s.to_f64(), a + b, "{a}+{b}");
            assert!(f.is_empty(), "{a}+{b} exact");
            let (p, _) = P::from_f64(a).mul_p(P::from_f64(b));
            assert_eq!(p.to_f64(), a * b, "{a}*{b}");
        }
        let (q, f) = P::from_f64(1.0).div_p(P::from_f64(4.0));
        assert_eq!(q.to_f64(), 0.25);
        assert!(f.is_empty());
        let (q, f) = P::from_f64(1.0).div_p(P::from_f64(3.0));
        assert!((q.to_f64() - 1.0 / 3.0).abs() < 1e-16);
        assert!(f.contains(FpFlags::INEXACT));
        let (s, f) = P::from_f64(9.0).sqrt_p();
        assert_eq!(s.to_f64(), 3.0);
        assert!(f.is_empty());
        let (s, f) = P::from_f64(2.0).sqrt_p();
        assert!((s.to_f64() - 2f64.sqrt()).abs() < 1e-16);
        assert!(f.contains(FpFlags::INEXACT));
    }

    #[test]
    fn nar_and_zero_rules() {
        type P = Posit32;
        let nar = P::NAR;
        assert!(nar.is_nar());
        assert!(nar.add_p(P::from_f64(1.0)).0.is_nar());
        assert!(P::from_f64(1.0).div_p(P::ZERO).0.is_nar());
        assert!(P::from_f64(-4.0).sqrt_p().0.is_nar());
        assert!(P::from_f64(-4.0).sqrt_p().1.contains(FpFlags::INVALID));
        // x - x = exact zero.
        let x = P::from_f64(3.7);
        assert!(x.sub_p(x).0.is_zero());
        // NaR negation is NaR; zero negation is zero.
        assert!(nar.negate().is_nar());
        assert!(P::ZERO.negate().is_zero());
    }

    #[test]
    fn saturation_not_overflow() {
        type P = Posit8; // es=0: maxpos = 64, minpos = 1/64
        let big = P::from_f64(64.0);
        assert_eq!(big.bits(), P::maxpos().bits());
        let (r, f) = big.mul_p(big);
        assert_eq!(r.bits(), P::maxpos().bits(), "saturates at maxpos");
        assert!(f.contains(FpFlags::INEXACT));
        let tiny = P::from_f64(1.0 / 64.0);
        let (r, _) = tiny.mul_p(tiny);
        assert_eq!(r.bits(), P::minpos().bits(), "saturates at minpos");
    }

    #[test]
    fn comparison_is_integer_order() {
        type P = Posit32;
        let vals = [-100.0, -1.0, -0.01, 0.0, 0.01, 1.0, 100.0];
        for w in vals.windows(2) {
            let a = P::from_f64(w[0]);
            let b = P::from_f64(w[1]);
            assert_eq!(a.cmp_p(b), CmpResult::Less, "{} < {}", w[0], w[1]);
        }
        assert_eq!(P::from_f64(5.0).cmp_p(P::from_f64(5.0)), CmpResult::Equal);
        assert_eq!(P::NAR.cmp_p(P::from_f64(0.0)), CmpResult::Unordered);
    }

    #[test]
    fn posit16_tapered_precision() {
        // Near 1.0, posit16 (es=1) has 12 fraction bits; far from 1.0 it has
        // fewer — the tapered-accuracy property.
        type P = Posit16;
        let near = P::from_f64(1.0 + 1.0 / 4096.0);
        assert_eq!(near.to_f64(), 1.0 + 1.0 / 4096.0, "exact near 1.0");
        let far = P::from_f64(65536.0 + 16.0);
        assert_ne!(far.to_f64(), 65536.0 + 16.0, "rounded far from 1.0");
    }

    #[test]
    fn ctx_interface() {
        let ctx = Posit64Ctx::default();
        let a = ctx.from_f64(2.0);
        let b = ctx.from_f64(3.0);
        let (s, _) = ctx.add(&a, &b, Round::NearestEven);
        assert_eq!(ctx.to_f64(&s, Round::NearestEven).0, 5.0);
        let (t, f) = ctx.sin(&ctx.from_f64(0.5), Round::NearestEven);
        assert!((ctx.to_f64(&t, Round::NearestEven).0 - 0.5f64.sin()).abs() < 1e-15);
        assert!(f.contains(FpFlags::INEXACT));
        assert!(ctx.is_nan(&Posit64::NAR));
        assert_eq!(ctx.name(), "posit64es3");
    }

    #[test]
    fn int_conversion_no_double_rounding() {
        // 2 − 2^-57 has 58 significant bits: exact in posit64es3 near 1.0
        // (59 significant bits available at scale 0) but NOT in f64. The
        // old via-f64 path rounded it to 2.0 first and returned (2, NONE);
        // the direct path must truncate to (1, INEXACT).
        let ctx = Posit64Ctx::default();
        let two = ctx.from_f64(2.0);
        let ulp = ctx.from_f64((-57f64).exp2());
        let (v, f) = ctx.sub(&two, &ulp, Round::NearestEven);
        assert_eq!(f, FpFlags::NONE, "2 - 2^-57 is posit64-exact");
        assert_eq!(v.to_f64(), 2.0, "f64 cannot hold it (the trap)");
        assert_eq!(ctx.to_i32(&v), (1, FpFlags::INEXACT));
        assert_eq!(ctx.to_i64(&v), (1, FpFlags::INEXACT));
        assert_eq!(ctx.to_u64(&v), (1, FpFlags::INEXACT));
    }

    #[test]
    fn int_conversion_boundaries() {
        let ctx = Posit64Ctx::default();
        let p = |x: f64| ctx.from_f64(x);
        // i32 range edges, ±1 ulp (integers near 2^31 are posit64-exact).
        assert_eq!(ctx.to_i32(&p(i32::MAX as f64)), (i32::MAX, FpFlags::NONE));
        assert_eq!(
            ctx.to_i32(&p(i32::MAX as f64 + 1.0)),
            (i32::MIN, FpFlags::INVALID)
        );
        assert_eq!(ctx.to_i32(&p(i32::MIN as f64)), (i32::MIN, FpFlags::NONE));
        assert_eq!(
            ctx.to_i32(&p(i32::MIN as f64 - 1.0)),
            (i32::MIN, FpFlags::INVALID)
        );
        // Fractional neighbors truncate toward zero with INEXACT.
        assert_eq!(
            ctx.to_i32(&p(i32::MAX as f64 + 0.5)),
            (i32::MAX, FpFlags::INEXACT)
        );
        assert_eq!(
            ctx.to_i32(&p(i32::MIN as f64 - 0.5)),
            (i32::MIN, FpFlags::INEXACT)
        );
        // i64 edges: −2^63 is exactly representable and in range; +2^63
        // overflows (cvttsd2si-style integer indefinite).
        assert_eq!(ctx.to_i64(&p(-(63f64.exp2()))), (i64::MIN, FpFlags::NONE));
        assert_eq!(ctx.to_i64(&p(63f64.exp2())), (i64::MIN, FpFlags::INVALID));
        // u64: 2^63 fits, 2^64 does not; small negatives truncate to 0.
        assert_eq!(ctx.to_u64(&p(63f64.exp2())), (1u64 << 63, FpFlags::NONE));
        assert_eq!(ctx.to_u64(&p(64f64.exp2())), (u64::MAX, FpFlags::INVALID));
        assert_eq!(ctx.to_u64(&p(-0.25)), (0, FpFlags::INEXACT));
        assert_eq!(ctx.to_u64(&p(-1.0)), (u64::MAX, FpFlags::INVALID));
        // NaR and huge-scale posits (maxpos has scale 496) → INVALID.
        assert_eq!(ctx.to_i32(&Posit64::NAR), (i32::MIN, FpFlags::INVALID));
        assert_eq!(ctx.to_i64(&Posit64::maxpos()), (i64::MIN, FpFlags::INVALID));
    }

    #[test]
    fn isqrt128() {
        assert_eq!(isqrt_u128(0), 0);
        assert_eq!(isqrt_u128(1), 1);
        assert_eq!(isqrt_u128(15), 3);
        assert_eq!(isqrt_u128(16), 4);
        let big = (1u128 << 126) + 12345;
        let s = isqrt_u128(big);
        assert!(s * s <= big && (s + 1) * (s + 1) > big);
    }
}
