//! Arbitrary-precision transcendental functions for [`BigFloat`].
//!
//! FPVM's alternative arithmetic interface includes the libm entry points
//! (sin, cos, pow, …) because FPVM interposes on the math library (§4.1
//! Fig. 8, §4.3): when an application calls `sin` on a shadowed value, the
//! math wrapper routes the call to the arithmetic system instead of letting
//! libm bit-pick the NaN-box apart.
//!
//! Implementations use argument reduction plus Taylor/atanh series evaluated
//! with `wp = prec + guard` working bits. Results are **faithfully rounded**
//! (error < 1 ulp); unlike MPFR we do not run Ziv's correct-rounding loop —
//! a documented substitution (DESIGN.md) that does not affect any experiment
//! shape. The paper's precision-sweep experiment (Fig. 11) measures only
//! add/sub/mul/div, which *are* correctly rounded.

use super::{add, cmp_quiet, div, floor, mul, round_to, sqrt, BigFloat, Kind, MIN_PREC};
use crate::flags::{FpFlags, Round};
use crate::softfp::CmpResult;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Guard bits added to the working precision.
const GUARD: u32 = 48;

fn wpz(prec: u32) -> u32 {
    prec.max(MIN_PREC) + GUARD
}

fn bfu(x: u64, wp: u32) -> BigFloat {
    debug_assert!(x < (1 << 53));
    BigFloat::from_f64(x as f64, wp, Round::NearestEven).0
}

fn inexact_result(v: BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let (r, _) = round_to(&v, prec.max(MIN_PREC), rm);
    (r, FpFlags::INEXACT)
}

type ConstCache = Mutex<HashMap<u32, BigFloat>>;

fn cache() -> &'static [ConstCache; 3] {
    static CACHES: OnceLock<[ConstCache; 3]> = OnceLock::new();
    CACHES.get_or_init(|| {
        [
            Mutex::new(HashMap::new()),
            Mutex::new(HashMap::new()),
            Mutex::new(HashMap::new()),
        ]
    })
}

fn cached_const(idx: usize, wp: u32, compute: impl FnOnce(u32) -> BigFloat) -> BigFloat {
    // Quantize wp to 64-bit steps so the cache stays small.
    let wp = wp.div_ceil(64) * 64;
    let mut guard = cache()[idx].lock().unwrap();
    if let Some(v) = guard.get(&wp) {
        return v.clone();
    }
    let v = compute(wp);
    guard.insert(wp, v.clone());
    v
}

/// ln 2 to `wp` bits: 2·atanh(1/3) = 2·Σ (1/3)^(2k+1) / (2k+1).
pub fn const_ln2(wp: u32) -> BigFloat {
    cached_const(0, wp, |wp| {
        let w = wp + 32;
        let rm = Round::NearestEven;
        let third = div(&bfu(1, w), &bfu(3, w), w, rm).0;
        let t2 = mul(&third, &third, w, rm).0;
        let mut term = third.clone();
        let mut sum = third;
        let mut k = 1u64;
        loop {
            term = mul(&term, &t2, w, rm).0;
            let contrib = div(&term, &bfu(2 * k + 1, w), w, rm).0;
            if contrib.is_zero() || contrib.exp() < -i64::from(w) {
                break;
            }
            sum = add(&sum, &contrib, w, rm).0;
            k += 1;
        }
        let two = bfu(2, w);
        round_to(&mul(&sum, &two, w, rm).0, wp, rm).0
    })
}

/// π to `wp` bits via Machin's formula: 16·atan(1/5) − 4·atan(1/239).
pub fn const_pi(wp: u32) -> BigFloat {
    cached_const(1, wp, |wp| {
        let w = wp + 32;
        let rm = Round::NearestEven;
        let atan_inv = |x: u64| -> BigFloat {
            // atan(1/x) = Σ (−1)^k / ((2k+1) x^(2k+1))
            let inv = div(&bfu(1, w), &bfu(x, w), w, rm).0;
            let inv2 = mul(&inv, &inv, w, rm).0;
            let mut term = inv.clone();
            let mut sum = inv;
            let mut k = 1u64;
            loop {
                term = mul(&term, &inv2, w, rm).0;
                let contrib = div(&term, &bfu(2 * k + 1, w), w, rm).0;
                if contrib.is_zero() || contrib.exp() < -i64::from(w) {
                    break;
                }
                sum = if k % 2 == 1 {
                    add(&sum, &contrib.neg(), w, rm).0
                } else {
                    add(&sum, &contrib, w, rm).0
                };
                k += 1;
            }
            sum
        };
        let a5 = atan_inv(5);
        let a239 = atan_inv(239);
        let p = add(
            &mul(&a5, &bfu(16, w), w, rm).0,
            &mul(&a239, &bfu(4, w), w, rm).0.neg(),
            w,
            rm,
        )
        .0;
        round_to(&p, wp, rm).0
    })
}

/// ln 10 to `wp` bits.
pub fn const_ln10(wp: u32) -> BigFloat {
    cached_const(2, wp, |wp| {
        // ln 10 = ln(10/8) + 3 ln 2; 10/8 = 1.25 keeps the atanh series fast.
        let w = wp + 32;
        let rm = Round::NearestEven;
        let m = div(&bfu(5, w), &bfu(4, w), w, rm).0;
        let lnm = ln_near_one(&m, w);
        let l2 = const_ln2(w);
        let r = add(&lnm, &mul(&l2, &bfu(3, w), w, rm).0, w, rm).0;
        round_to(&r, wp, rm).0
    })
}

/// ln(m) for m in roughly [2/3, 2] via 2·atanh((m−1)/(m+1)), with 4 rounds
/// of square-root reduction for fast series convergence.
fn ln_near_one(m: &BigFloat, wp: u32) -> BigFloat {
    let rm = Round::NearestEven;
    let w = wp + 32;
    const K: u32 = 4;
    let mut v = m.clone();
    for _ in 0..K {
        v = sqrt(&v, w, rm).0;
    }
    // z = (v-1)/(v+1), |z| small after the reductions.
    let one = bfu(1, w);
    let z = div(
        &add(&v, &one.neg(), w, rm).0,
        &add(&v, &one, w, rm).0,
        w,
        rm,
    )
    .0;
    let z2 = mul(&z, &z, w, rm).0;
    let mut term = z.clone();
    let mut sum = z;
    let mut k = 1u64;
    loop {
        term = mul(&term, &z2, w, rm).0;
        let contrib = div(&term, &bfu(2 * k + 1, w), w, rm).0;
        if contrib.is_zero() || contrib.exp() < -i64::from(w) {
            break;
        }
        sum = add(&sum, &contrib, w, rm).0;
        k += 1;
    }
    // ln m = 2^(K+1) · atanh(z)
    mul(&sum, &bfu(1 << (K + 1), w), w, rm).0
}

/// e^a, faithfully rounded to `prec` bits.
pub fn exp(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    match a.kind() {
        Kind::Nan => return (BigFloat::nan(prec), FpFlags::NONE),
        Kind::Inf => {
            return if a.sign() {
                (BigFloat::zero(false, prec), FpFlags::NONE)
            } else {
                (BigFloat::inf(false, prec), FpFlags::NONE)
            }
        }
        Kind::Zero => return (BigFloat::from_f64(1.0, prec, rm).0, FpFlags::NONE),
        Kind::Finite => {}
    }
    // Guard against absurd exponents (|x| > 2^62 would need a reduction
    // count that cannot fit the exponent anyway).
    if a.exp() > 62 {
        return if a.sign() {
            (
                BigFloat::zero(false, prec),
                FpFlags::UNDERFLOW | FpFlags::INEXACT,
            )
        } else {
            (
                BigFloat::inf(false, prec),
                FpFlags::OVERFLOW | FpFlags::INEXACT,
            )
        };
    }
    const HALVINGS: u32 = 10;
    let wp = wpz(prec) + HALVINGS + a.exp().max(0) as u32;
    let rmn = Round::NearestEven;
    let ln2 = const_ln2(wp);
    // n = round(a / ln2); r = a − n·ln2 with |r| ≤ ln2/2.
    let q = div(a, &ln2, wp, rmn).0;
    let n_bf = round_nearest_int(&q, wp);
    let n = bigfloat_to_i64(&n_bf);
    let r = add(a, &mul(&n_bf, &ln2, wp, rmn).0.neg(), wp, rmn).0;
    // t = r / 2^HALVINGS.
    let mut t = r;
    t = scale2(&t, -i64::from(HALVINGS));
    // Taylor e^t = Σ t^k / k!.
    let mut term = bfu(1, wp);
    let mut sum = bfu(1, wp);
    let mut k = 1u64;
    loop {
        term = div(&mul(&term, &t, wp, rmn).0, &bfu(k, wp), wp, rmn).0;
        if term.is_zero() || term.exp() < -i64::from(wp) {
            break;
        }
        sum = add(&sum, &term, wp, rmn).0;
        k += 1;
    }
    // Square back up.
    for _ in 0..HALVINGS {
        sum = mul(&sum, &sum, wp, rmn).0;
    }
    // × 2^n.
    let sum = scale2(&sum, n);
    inexact_result(sum, prec, rm)
}

/// ln a, faithfully rounded.
pub fn log(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    match a.kind() {
        Kind::Nan => return (BigFloat::nan(prec), FpFlags::NONE),
        Kind::Zero => return (BigFloat::inf(true, prec), FpFlags::DIVZERO),
        Kind::Inf => {
            return if a.sign() {
                (BigFloat::nan(prec), FpFlags::INVALID)
            } else {
                (BigFloat::inf(false, prec), FpFlags::NONE)
            }
        }
        Kind::Finite => {
            if a.sign() {
                return (BigFloat::nan(prec), FpFlags::INVALID);
            }
        }
    }
    // a = m × 2^e with m in [1, 2).
    let wp = wpz(prec) + 32;
    let rmn = Round::NearestEven;
    let e = a.exp() - 1;
    let m = scale2(a, -e);
    // Exact one?
    if e == 0 {
        if let (CmpResult::Equal, _) = cmp_quiet(&m, &bfu(1, wp)) {
            return (BigFloat::zero(false, prec), FpFlags::NONE);
        }
    }
    let lnm = ln_near_one(&m, wp);
    let ln2 = const_ln2(wp);
    let ebf = BigFloat::from_f64(e as f64, wp, rmn).0;
    let r = add(&lnm, &mul(&ebf, &ln2, wp, rmn).0, wp, rmn).0;
    inexact_result(r, prec, rm)
}

/// log₁₀ a.
pub fn log10(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let wp = wpz(prec) + 32;
    let (l, f) = log(a, wp, Round::NearestEven);
    if l.is_nan() || l.is_inf() || l.is_zero() {
        let (r, _) = round_to(&l, prec.max(MIN_PREC), rm);
        return (r, f);
    }
    let r = div(&l, &const_ln10(wp), wp, Round::NearestEven).0;
    inexact_result(r, prec, rm)
}

/// a^b with IEEE `pow` special cases.
pub fn pow(a: &BigFloat, b: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    if b.is_zero() {
        return (BigFloat::from_f64(1.0, prec, rm).0, FpFlags::NONE);
    }
    if a.is_nan() || b.is_nan() {
        return (BigFloat::nan(prec), FpFlags::NONE);
    }
    let b_int = is_integer(b);
    let b_odd = b_int && integer_is_odd(b);
    if a.is_zero() {
        let neg = a.sign() && b_odd;
        return if b.sign() {
            (BigFloat::inf(neg, prec), FpFlags::DIVZERO)
        } else {
            (BigFloat::zero(neg, prec), FpFlags::NONE)
        };
    }
    if a.is_inf() {
        let neg = a.sign() && b_odd;
        return if b.sign() {
            (BigFloat::zero(neg, prec), FpFlags::NONE)
        } else {
            (BigFloat::inf(neg, prec), FpFlags::NONE)
        };
    }
    if a.sign() && !b_int {
        return (BigFloat::nan(prec), FpFlags::INVALID);
    }
    // Small integer exponents: exact binary powering (keeps pow(x, 2) etc.
    // exactly rounded and fast — the common case in scientific codes).
    if b_int && b.exp() <= 20 {
        let n = bigfloat_to_i64(b);
        let wp = wpz(prec) + 2 * (64 - n.unsigned_abs().leading_zeros());
        let rmn = Round::NearestEven;
        let mut base = round_to(a, wp, rmn).0;
        let mut e = n.unsigned_abs();
        let mut acc = bfu(1, wp);
        let mut inexact = false;
        while e > 0 {
            if e & 1 == 1 {
                let (v, f) = mul(&acc, &base, wp, rmn);
                acc = v;
                inexact |= f.contains(FpFlags::INEXACT);
            }
            e >>= 1;
            if e > 0 {
                let (v, f) = mul(&base, &base, wp, rmn);
                base = v;
                inexact |= f.contains(FpFlags::INEXACT);
            }
        }
        if n < 0 {
            let (v, f) = div(&bfu(1, wp), &acc, wp, rmn);
            acc = v;
            inexact |= f.contains(FpFlags::INEXACT);
        }
        let (r, ix2) = round_to(&acc, prec, rm);
        let flags = if inexact || ix2 {
            FpFlags::INEXACT
        } else {
            FpFlags::NONE
        };
        return (r, flags);
    }
    // General case: exp(b · ln a) (a > 0 here).
    let wp = wpz(prec) + 32;
    let rmn = Round::NearestEven;
    let (l, _) = log(&a.abs(), wp, rmn);
    let t = mul(b, &l, wp, rmn).0;
    let (mut r, mut f) = exp(&t, wp, rmn);
    if a.sign() && b_odd {
        r = r.neg();
    }
    let (r, _) = round_to(&r, prec, rm);
    f |= FpFlags::INEXACT;
    (r, f)
}

/// sin a, faithfully rounded.
pub fn sin(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    sincos_impl(a, prec, rm, false)
}

/// cos a, faithfully rounded.
pub fn cos(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    sincos_impl(a, prec, rm, true)
}

fn sincos_impl(a: &BigFloat, prec: u32, rm: Round, want_cos: bool) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    match a.kind() {
        Kind::Nan => return (BigFloat::nan(prec), FpFlags::NONE),
        Kind::Inf => return (BigFloat::nan(prec), FpFlags::INVALID),
        Kind::Zero => {
            return if want_cos {
                (BigFloat::from_f64(1.0, prec, rm).0, FpFlags::NONE)
            } else {
                (BigFloat::zero(a.sign(), prec), FpFlags::NONE)
            }
        }
        Kind::Finite => {}
    }
    // Argument reduction loses ~a.exp bits to cancellation.
    let wp = wpz(prec) + 32 + a.exp().max(0) as u32;
    let rmn = Round::NearestEven;
    let pi = const_pi(wp);
    let half_pi = scale2(&pi, -1);
    // k = round(a / (π/2)), r = a − k·(π/2).
    let q = div(a, &half_pi, wp, rmn).0;
    let k_bf = round_nearest_int(&q, wp);
    let k_mod4 = integer_mod4(&k_bf);
    let r = add(a, &mul(&k_bf, &half_pi, wp, rmn).0.neg(), wp, rmn).0;
    // Choose which series to evaluate: sin(a) = ±sin(r) or ±cos(r).
    // sin(x + k·π/2): k≡0 → sin r; 1 → cos r; 2 → −sin r; 3 → −cos r.
    // cos(x + k·π/2): k≡0 → cos r; 1 → −sin r; 2 → −cos r; 3 → sin r.
    let (use_cos, negate) = if want_cos {
        match k_mod4 {
            0 => (true, false),
            1 => (false, true),
            2 => (true, true),
            _ => (false, false),
        }
    } else {
        match k_mod4 {
            0 => (false, false),
            1 => (true, false),
            2 => (false, true),
            _ => (true, true),
        }
    };
    let r2 = mul(&r, &r, wp, rmn).0;
    let mut sum;
    let mut term;
    let mut k;
    if use_cos {
        sum = bfu(1, wp);
        term = bfu(1, wp);
        k = 0u64;
        loop {
            // term *= -r² / ((2k+1)(2k+2))
            term = div(
                &mul(&term, &r2, wp, rmn).0,
                &bfu((2 * k + 1) * (2 * k + 2), wp),
                wp,
                rmn,
            )
            .0
            .neg();
            if term.is_zero() || term.exp() < -i64::from(wp) {
                break;
            }
            sum = add(&sum, &term, wp, rmn).0;
            k += 1;
        }
    } else {
        sum = r.clone();
        term = r.clone();
        k = 0u64;
        loop {
            term = div(
                &mul(&term, &r2, wp, rmn).0,
                &bfu((2 * k + 2) * (2 * k + 3), wp),
                wp,
                rmn,
            )
            .0
            .neg();
            if term.is_zero() || term.exp() < -i64::from(wp) {
                break;
            }
            sum = add(&sum, &term, wp, rmn).0;
            k += 1;
        }
    }
    if negate {
        sum = sum.neg();
    }
    inexact_result(sum, prec, rm)
}

/// tan a = sin a / cos a.
pub fn tan(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    match a.kind() {
        Kind::Nan => return (BigFloat::nan(prec), FpFlags::NONE),
        Kind::Inf => return (BigFloat::nan(prec), FpFlags::INVALID),
        Kind::Zero => return (BigFloat::zero(a.sign(), prec), FpFlags::NONE),
        Kind::Finite => {}
    }
    let wp = wpz(prec) + 32;
    let (s, _) = sin(a, wp, Round::NearestEven);
    let (c, _) = cos(a, wp, Round::NearestEven);
    let r = div(&s, &c, wp, Round::NearestEven).0;
    inexact_result(r, prec, rm)
}

/// atan a, faithfully rounded.
pub fn atan(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    match a.kind() {
        Kind::Nan => return (BigFloat::nan(prec), FpFlags::NONE),
        Kind::Inf => {
            let pi = const_pi(wpz(prec));
            let mut h = scale2(&pi, -1);
            if a.sign() {
                h = h.neg();
            }
            return inexact_result(h, prec, rm);
        }
        Kind::Zero => return (BigFloat::zero(a.sign(), prec), FpFlags::NONE),
        Kind::Finite => {}
    }
    let wp = wpz(prec) + 32;
    let rmn = Round::NearestEven;
    let one = bfu(1, wp);
    // |a| > 1: atan a = sign·π/2 − atan(1/a).
    if a.exp() > 0 && cmp_quiet(&a.abs(), &one).0 == CmpResult::Greater {
        let inv = div(&one, a, wp, rmn).0;
        let (inner, _) = atan(&inv, wp, rmn);
        let mut h = scale2(&const_pi(wp), -1);
        if a.sign() {
            h = h.neg();
        }
        let r = add(&h, &inner.neg(), wp, rmn).0;
        return inexact_result(r, prec, rm);
    }
    // Halving: atan x = 2·atan(x / (1 + √(1+x²))), applied 4 times.
    const HALVINGS: u32 = 4;
    let mut x = round_to(a, wp, rmn).0;
    for _ in 0..HALVINGS {
        let x2 = mul(&x, &x, wp, rmn).0;
        let s = sqrt(&add(&one, &x2, wp, rmn).0, wp, rmn).0;
        x = div(&x, &add(&one, &s, wp, rmn).0, wp, rmn).0;
    }
    // Series Σ (−1)^k x^(2k+1) / (2k+1).
    let x2 = mul(&x, &x, wp, rmn).0;
    let mut term = x.clone();
    let mut sum = x;
    let mut k = 1u64;
    loop {
        term = mul(&term, &x2, wp, rmn).0;
        let contrib = div(&term, &bfu(2 * k + 1, wp), wp, rmn).0;
        if contrib.is_zero() || contrib.exp() < -i64::from(wp) {
            break;
        }
        sum = if k % 2 == 1 {
            add(&sum, &contrib.neg(), wp, rmn).0
        } else {
            add(&sum, &contrib, wp, rmn).0
        };
        k += 1;
    }
    let r = scale2(&sum, i64::from(HALVINGS));
    inexact_result(r, prec, rm)
}

/// asin a = atan(a / √(1−a²)); IE outside [−1, 1].
pub fn asin(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    if a.is_nan() {
        return (BigFloat::nan(prec), FpFlags::NONE);
    }
    if a.is_zero() {
        return (BigFloat::zero(a.sign(), prec), FpFlags::NONE);
    }
    let wp = wpz(prec) + 32;
    let rmn = Round::NearestEven;
    let one = bfu(1, wp);
    match cmp_quiet(&a.abs(), &one).0 {
        CmpResult::Greater | CmpResult::Unordered => {
            return (BigFloat::nan(prec), FpFlags::INVALID)
        }
        CmpResult::Equal => {
            let mut h = scale2(&const_pi(wp), -1);
            if a.sign() {
                h = h.neg();
            }
            return inexact_result(h, prec, rm);
        }
        CmpResult::Less => {}
    }
    let a2 = mul(a, a, wp, rmn).0;
    let denom = sqrt(&add(&one, &a2.neg(), wp, rmn).0, wp, rmn).0;
    let t = div(a, &denom, wp, rmn).0;
    let (r, _) = atan(&t, wp, rmn);
    inexact_result(r, prec, rm)
}

/// acos a = π/2 − asin a; IE outside [−1, 1].
pub fn acos(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    if a.is_nan() {
        return (BigFloat::nan(prec), FpFlags::NONE);
    }
    let wp = wpz(prec) + 32;
    let rmn = Round::NearestEven;
    let one = bfu(1, wp);
    if cmp_quiet(&a.abs(), &one).0 == CmpResult::Greater {
        return (BigFloat::nan(prec), FpFlags::INVALID);
    }
    if cmp_quiet(a, &one).0 == CmpResult::Equal {
        return (BigFloat::zero(false, prec), FpFlags::NONE);
    }
    let (s, _) = asin(a, wp, rmn);
    let h = scale2(&const_pi(wp), -1);
    let r = add(&h, &s.neg(), wp, rmn).0;
    inexact_result(r, prec, rm)
}

/// atan2(y, x) with full quadrant handling.
pub fn atan2(y: &BigFloat, x: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    let prec = prec.max(MIN_PREC);
    if y.is_nan() || x.is_nan() {
        return (BigFloat::nan(prec), FpFlags::NONE);
    }
    let wp = wpz(prec) + 32;
    let rmn = Round::NearestEven;
    let pi = const_pi(wp);
    if x.is_zero() && y.is_zero() {
        // IEEE atan2(±0, ±0) is defined (0 or ±π); follow libm.
        let r = if x.sign() {
            if y.sign() {
                pi.neg()
            } else {
                pi.clone()
            }
        } else {
            return (BigFloat::zero(y.sign(), prec), FpFlags::NONE);
        };
        return inexact_result(r, prec, rm);
    }
    if y.is_zero() {
        return if x.sign() {
            let r = if y.sign() { pi.neg() } else { pi.clone() };
            inexact_result(r, prec, rm)
        } else {
            (BigFloat::zero(y.sign(), prec), FpFlags::NONE)
        };
    }
    if x.is_zero() {
        let mut h = scale2(&pi, -1);
        if y.sign() {
            h = h.neg();
        }
        return inexact_result(h, prec, rm);
    }
    let q = div(y, x, wp, rmn).0;
    let (base, _) = atan(&q, wp, rmn);
    let r = if x.sign() {
        if y.sign() {
            add(&base, &pi.neg(), wp, rmn).0
        } else {
            add(&base, &pi, wp, rmn).0
        }
    } else {
        base
    };
    inexact_result(r, prec, rm)
}

// ---------------------------------------------------------------------------
// Integer helpers on BigFloat
// ---------------------------------------------------------------------------

/// Multiply by 2^k exactly.
pub fn scale2(a: &BigFloat, k: i64) -> BigFloat {
    let mut r = a.clone();
    if r.kind == Kind::Finite {
        r.exp += k;
    }
    r
}

/// Nearest integer (ties away handled via floor(x + 1/2) — adequate for
/// argument reduction, where a one-ulp tie preference is harmless).
pub fn round_nearest_int(a: &BigFloat, wp: u32) -> BigFloat {
    let rmn = Round::NearestEven;
    let half = BigFloat::from_f64(0.5, wp, rmn).0;
    let shifted = add(a, &half, wp, rmn).0;
    floor(&shifted, wp).0
}

/// True if the value is an integer.
pub fn is_integer(a: &BigFloat) -> bool {
    match a.kind {
        Kind::Zero => true,
        Kind::Finite => {
            let frac_bits = i64::from(a.prec) - a.exp;
            if frac_bits <= 0 {
                return true;
            }
            if a.exp <= 0 {
                return false;
            }
            !super::any_bits_below(&a.mant, frac_bits as usize)
        }
        _ => false,
    }
}

/// Low `i` bit of an integral BigFloat (bit 0 of the integer value).
fn integer_bit(a: &BigFloat, i: u32) -> bool {
    if a.kind != Kind::Finite {
        return false;
    }
    // value = mant × 2^(exp − prec); integer bit j is mantissa bit
    // j + prec − exp.
    let pos = i64::from(i) + i64::from(a.prec) - a.exp;
    if pos < 0 {
        false // scaled up: low bits are zero
    } else {
        super::bit_at(&a.mant, pos as usize)
    }
}

/// True if an integral BigFloat is odd.
pub fn integer_is_odd(a: &BigFloat) -> bool {
    integer_bit(a, 0)
}

/// Low two bits of an integral BigFloat, as 0..=3, sign-adjusted so the
/// result equals `((k % 4) + 4) % 4` for the signed integer k.
pub fn integer_mod4(a: &BigFloat) -> u8 {
    let low = u8::from(integer_bit(a, 0)) | (u8::from(integer_bit(a, 1)) << 1);
    if a.sign && low != 0 {
        4 - low
    } else {
        low
    }
}

/// Integral BigFloat to i64 (saturating; used for bounded reductions only).
pub fn bigfloat_to_i64(a: &BigFloat) -> i64 {
    let (f, _) = a.to_f64(Round::Zero);
    if f >= 9.2e18 {
        i64::MAX
    } else if f <= -9.2e18 {
        i64::MIN
    } else {
        f as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(x: f64) -> BigFloat {
        BigFloat::from_f64(x, 120, Round::NearestEven).0
    }

    fn close(a: &BigFloat, expect: f64, what: &str) {
        let (got, _) = a.to_f64(Round::NearestEven);
        let err = (got - expect).abs();
        let tol = expect.abs().max(1e-300) * 1e-14;
        assert!(err <= tol, "{what}: got {got}, expected {expect}");
    }

    #[test]
    fn constants() {
        close(&const_pi(120), std::f64::consts::PI, "pi");
        close(&const_ln2(120), std::f64::consts::LN_2, "ln2");
        close(&const_ln10(120), std::f64::consts::LN_10, "ln10");
        // Constants at different precisions agree on the shared prefix.
        let p1 = const_pi(256);
        let (d1, _) = p1.to_f64(Round::NearestEven);
        assert_eq!(d1.to_bits(), std::f64::consts::PI.to_bits());
    }

    #[test]
    fn exp_log_roundtrip() {
        for x in [0.5, 1.0, -1.0, 3.25, -7.5, 0.001, 20.0] {
            let (e, f) = exp(&bf(x), 120, Round::NearestEven);
            close(&e, x.exp(), &format!("exp({x})"));
            assert!(f.contains(FpFlags::INEXACT));
            let (l, _) = log(&e, 120, Round::NearestEven);
            close(&l, x, &format!("log(exp({x}))"));
        }
        // Specials.
        assert!(exp(&BigFloat::nan(64), 64, Round::NearestEven).0.is_nan());
        assert!(log(&bf(-1.0), 64, Round::NearestEven)
            .1
            .contains(FpFlags::INVALID));
        assert!(log(&BigFloat::zero(false, 64), 64, Round::NearestEven)
            .0
            .is_inf());
        let (one, f) = exp(&BigFloat::zero(false, 64), 64, Round::NearestEven);
        close(&one, 1.0, "exp(0)");
        assert!(f.is_empty());
    }

    #[test]
    fn trig_matches_host() {
        for x in [0.1, 0.5, 1.0, -1.0, 3.0, 10.0, -25.5, 100.0] {
            close(
                &sin(&bf(x), 120, Round::NearestEven).0,
                x.sin(),
                &format!("sin({x})"),
            );
            close(
                &cos(&bf(x), 120, Round::NearestEven).0,
                x.cos(),
                &format!("cos({x})"),
            );
            close(
                &tan(&bf(x), 120, Round::NearestEven).0,
                x.tan(),
                &format!("tan({x})"),
            );
        }
    }

    #[test]
    fn inverse_trig_matches_host() {
        for x in [0.0f64, 0.1, 0.5, -0.5, 0.99, -0.99, 1.0, -1.0] {
            close(
                &asin(&bf(x), 120, Round::NearestEven).0,
                x.asin(),
                &format!("asin({x})"),
            );
            close(
                &acos(&bf(x), 120, Round::NearestEven).0,
                x.acos(),
                &format!("acos({x})"),
            );
        }
        for x in [0.0f64, 0.3, -2.0, 50.0, -1000.0] {
            close(
                &atan(&bf(x), 120, Round::NearestEven).0,
                x.atan(),
                &format!("atan({x})"),
            );
        }
        assert!(asin(&bf(1.5), 64, Round::NearestEven)
            .1
            .contains(FpFlags::INVALID));
        for (y, x) in [
            (1.0, 1.0),
            (1.0, -1.0),
            (-1.0, -1.0),
            (-1.0, 1.0),
            (2.0, 0.5),
        ] {
            close(
                &atan2(&bf(y), &bf(x), 120, Round::NearestEven).0,
                y.atan2(x),
                &format!("atan2({y},{x})"),
            );
        }
    }

    #[test]
    fn pow_cases() {
        close(
            &pow(&bf(2.0), &bf(10.0), 120, Round::NearestEven).0,
            1024.0,
            "2^10",
        );
        close(
            &pow(&bf(2.0), &bf(0.5), 120, Round::NearestEven).0,
            2f64.sqrt(),
            "2^0.5",
        );
        close(
            &pow(&bf(-2.0), &bf(3.0), 120, Round::NearestEven).0,
            -8.0,
            "(-2)^3",
        );
        close(
            &pow(&bf(10.0), &bf(-3.0), 120, Round::NearestEven).0,
            1e-3,
            "10^-3",
        );
        assert!(pow(&bf(-2.0), &bf(0.5), 64, Round::NearestEven)
            .1
            .contains(FpFlags::INVALID));
        let (one, f) = pow(&bf(5.0), &BigFloat::zero(false, 64), 64, Round::NearestEven);
        close(&one, 1.0, "5^0");
        assert!(f.is_empty());
        // Integer powering is exact when the result is representable.
        let (v, f) = pow(&bf(3.0), &bf(4.0), 120, Round::NearestEven);
        close(&v, 81.0, "3^4");
        assert!(f.is_empty(), "3^4 should be exact, got {f}");
    }

    #[test]
    fn integer_helpers() {
        assert!(is_integer(&bf(5.0)));
        assert!(is_integer(&bf(-12.0)));
        assert!(is_integer(&bf(0.0)));
        assert!(!is_integer(&bf(0.5)));
        assert!(!is_integer(&bf(-3.25)));
        assert!(is_integer(&bf(1e20)));
        assert!(integer_is_odd(&bf(3.0)));
        assert!(!integer_is_odd(&bf(4.0)));
        assert_eq!(integer_mod4(&bf(0.0)), 0);
        assert_eq!(integer_mod4(&bf(5.0)), 1);
        assert_eq!(integer_mod4(&bf(6.0)), 2);
        assert_eq!(integer_mod4(&bf(7.0)), 3);
        assert_eq!(integer_mod4(&bf(-1.0)), 3);
        assert_eq!(integer_mod4(&bf(-6.0)), 2);
        assert_eq!(bigfloat_to_i64(&bf(42.0)), 42);
        assert_eq!(bigfloat_to_i64(&bf(-42.0)), -42);
    }

    #[test]
    fn high_precision_sin_is_consistent() {
        // sin at 400 bits rounded to 53 must equal sin at 120 bits rounded
        // to 53 (both faithful; the value is not near a rounding boundary).
        let x = bf(1.2345);
        let (a, _) = sin(&x, 400, Round::NearestEven);
        let (b, _) = sin(&x, 120, Round::NearestEven);
        assert_eq!(
            a.to_f64(Round::NearestEven).0.to_bits(),
            b.to_f64(Round::NearestEven).0.to_bits()
        );
    }
}
