//! **BigFloat**: arbitrary-precision binary floating point with correct
//! rounding — the reproduction's stand-in for GNU MPFR (§4.3 "MPFR").
//!
//! Like MPFR, BigFloat "essentially implements the IEEE floating point
//! standard in software, but with dynamic runtime selectable precision. The
//! fraction can be an arbitrary number of bits long, while the exponent is a
//! 64 bit … number." Precision is a per-operation target; every operation
//! returns the correctly-rounded result for the requested [`Round`] mode
//! plus exact [`FpFlags`].
//!
//! Representation: `value = (-1)^sign × mant × 2^(exp − prec)` with
//! `2^(prec−1) ≤ mant < 2^prec` (the mantissa is an LSB-aligned integer of
//! exactly `prec` significant bits, stored little-endian in `u64` limbs).
//! Equivalently, `value = 0.m₁m₂… × 2^exp` with the leading mantissa bit
//! set — MPFR's convention.
//!
//! The exponent is unbounded in practice (`i64`, like MPFR's 64-bit
//! exponent), so overflow/underflow arise only when demoting to `f64`.
//!
//! Asymptotics match MPFR's basecase paths — addition is `O(n)`,
//! multiplication schoolbook `O(n²)` (with a Karatsuba layer), division and
//! square root are built on the same primitives — which is what the Fig. 11
//! precision-sweep experiment characterizes.

pub mod limb;
mod transcendental;

pub use transcendental::*;

use crate::flags::{FpFlags, Round};
use crate::softfp::CmpResult;
use std::cmp::Ordering;

mod ctx;
pub use ctx::BigFloatCtx;

/// Value class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// ±0.
    Zero,
    /// Finite nonzero.
    Finite,
    /// ±∞.
    Inf,
    /// Not a number.
    Nan,
}

/// An arbitrary-precision binary floating point number.
#[derive(Debug, Clone)]
pub struct BigFloat {
    sign: bool,
    kind: Kind,
    exp: i64,
    mant: Vec<u64>,
    prec: u32,
}

/// Minimum supported precision in bits.
pub const MIN_PREC: u32 = 2;

impl BigFloat {
    /// ±0 at the given precision.
    pub fn zero(sign: bool, prec: u32) -> Self {
        BigFloat {
            sign,
            kind: Kind::Zero,
            exp: 0,
            mant: vec![0],
            prec,
        }
    }

    /// ±∞.
    pub fn inf(sign: bool, prec: u32) -> Self {
        BigFloat {
            sign,
            kind: Kind::Inf,
            exp: 0,
            mant: vec![0],
            prec,
        }
    }

    /// NaN.
    pub fn nan(prec: u32) -> Self {
        BigFloat {
            sign: false,
            kind: Kind::Nan,
            exp: 0,
            mant: vec![0],
            prec,
        }
    }

    /// Construct from an integer mantissa with unit weight `2^unit_exp`,
    /// rounding to `prec` bits: `value = (-1)^sign × (mant + ε) × 2^unit_exp`
    /// where `0 ≤ ε < 1` and `sticky` says whether `ε > 0`.
    ///
    /// Returns the value and whether rounding was inexact.
    pub fn from_int(
        sign: bool,
        unit_exp: i64,
        mant: &[u64],
        sticky: bool,
        prec: u32,
        rm: Round,
    ) -> (Self, bool) {
        let prec = prec.max(MIN_PREC);
        let lz = limb::leading_zeros(mant);
        let total_bits = mant.len() as u64 * 64;
        if lz as u64 == total_bits {
            // Zero mantissa: value is ε — either exact zero or a tiny
            // sticky residue (rounds to 0 or 1 ulp depending on mode).
            if !sticky {
                return (BigFloat::zero(sign, prec), false);
            }
            let up = match rm {
                Round::Up => !sign,
                Round::Down => sign,
                _ => false,
            };
            if up {
                // Smallest representable magnitude above 0 at this unit:
                // 1 × 2^unit_exp scaled down to prec bits.
                let mut m = vec![0u64; (prec as usize).div_ceil(64)];
                let top = (prec - 1) as usize;
                m[top / 64] = 1 << (top % 64);
                let v = BigFloat {
                    sign,
                    kind: Kind::Finite,
                    exp: unit_exp + 1,
                    mant: m,
                    prec,
                };
                return (v, true);
            }
            return (BigFloat::zero(sign, prec), true);
        }
        let bitlen = total_bits - u64::from(lz); // number of significant bits
        let nlimbs = (prec as usize).div_ceil(64);
        let exp = unit_exp + bitlen as i64; // value in [2^(exp-1), 2^exp)
        let mut m;
        let mut inexact = sticky;
        let mut round_up = false;
        if bitlen as i64 > i64::from(prec) {
            // Cut bits below the precision: capture round + sticky.
            let cut = (bitlen - u64::from(prec)) as usize;
            let round_bit = bit_at(mant, cut - 1);
            let mut low_sticky = sticky;
            if !low_sticky {
                low_sticky = any_bits_below(mant, cut - 1);
            }
            m = shift_right_into(mant, cut, nlimbs);
            inexact = round_bit || low_sticky;
            round_up = match rm {
                Round::NearestEven => round_bit && (low_sticky || m[0] & 1 == 1),
                Round::Up => inexact && !sign,
                Round::Down => inexact && sign,
                Round::Zero => false,
            };
        } else {
            // Widen to exactly prec bits.
            let shift = (i64::from(prec) - bitlen as i64) as usize;
            m = shift_left_into(mant, shift, nlimbs);
            if sticky {
                round_up = match rm {
                    Round::Up => !sign,
                    Round::Down => sign,
                    _ => false, // ε < half an ulp here only if shift > 0;
                                // for shift == 0 ε < 1 ulp: RNE rounds down
                                // unless ε ≥ 1/2, which sticky alone cannot
                                // attest — callers providing sticky guarantee
                                // ε below the rounding boundary (guard bits).
                };
            }
        }
        let mut exp = exp;
        if round_up {
            let carry = limb::add_assign(&mut m, &[1]);
            let top_bit = (prec - 1) as usize;
            if carry || m[top_bit / 64] >> (top_bit % 64) > 1 || bit_at(&m, prec as usize) {
                // Mantissa overflowed to 2^prec: renormalize.
                limb::shr_small(&mut m, 1);
                let top = &mut m[top_bit / 64];
                *top |= 1 << (top_bit % 64);
                exp += 1;
            }
        }
        (
            BigFloat {
                sign,
                kind: Kind::Finite,
                exp,
                mant: m,
                prec,
            },
            inexact,
        )
    }

    /// Exact conversion from `f64` at the given precision (inexact only if
    /// `prec < 53` requires rounding).
    pub fn from_f64(x: f64, prec: u32, rm: Round) -> (Self, FpFlags) {
        if x.is_nan() {
            return (BigFloat::nan(prec), FpFlags::NONE);
        }
        if x.is_infinite() {
            return (BigFloat::inf(x < 0.0, prec), FpFlags::NONE);
        }
        if x == 0.0 {
            return (BigFloat::zero(x.is_sign_negative(), prec), FpFlags::NONE);
        }
        let bits = x.to_bits();
        let sign = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & 0x000F_FFFF_FFFF_FFFF;
        let (mant, unit) = if biased == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1 << 52), biased - 1075)
        };
        let (v, inexact) = BigFloat::from_int(sign, unit, &[mant], false, prec, rm);
        let flags = if inexact {
            FpFlags::INEXACT
        } else {
            FpFlags::NONE
        };
        (v, flags)
    }

    /// Round (demote) to `f64`, with overflow/underflow/inexact flags.
    pub fn to_f64(&self, rm: Round) -> (f64, FpFlags) {
        match self.kind {
            Kind::Nan => (f64::NAN, FpFlags::NONE),
            Kind::Inf => (
                if self.sign {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                },
                FpFlags::NONE,
            ),
            Kind::Zero => (if self.sign { -0.0 } else { 0.0 }, FpFlags::NONE),
            Kind::Finite => {
                // Normal range: exp in [-1021, 1024].
                if self.exp > 1024 {
                    let v = match rm {
                        Round::Zero => f64::MAX,
                        Round::Down if !self.sign => f64::MAX,
                        Round::Up if self.sign => f64::MIN,
                        _ => f64::INFINITY,
                    };
                    let v = if self.sign && v.is_infinite() {
                        f64::NEG_INFINITY
                    } else if self.sign && v == f64::MAX {
                        f64::MIN
                    } else {
                        v
                    };
                    return (v, FpFlags::OVERFLOW | FpFlags::INEXACT);
                }
                // Round once to 53 bits with the exponent unbounded: x64
                // masked-mode tininess is judged on THIS result (IEEE
                // "after rounding"), and whenever the result is not tiny
                // it is also exactly the value to deliver.
                let (r53, ix53) = BigFloat::from_int(
                    self.sign,
                    self.exp - i64::from(self.prec),
                    &self.mant,
                    false,
                    53,
                    rm,
                );
                // Rounding can carry past the overflow boundary.
                if r53.exp > 1024 {
                    return (
                        if self.sign {
                            f64::NEG_INFINITY
                        } else {
                            f64::INFINITY
                        },
                        FpFlags::OVERFLOW | FpFlags::INEXACT,
                    );
                }
                // Tiny ⇔ |r53| < 2^-1021-1 (min normal); |r53| ∈
                // [2^(exp−1), 2^exp) makes that an exponent test.
                let tiny = r53.exp <= -1022;
                if !tiny {
                    // Normal result: r53 is the delivered value, and the
                    // bounded rounding agrees with the unbounded one.
                    let m53 = widen_to_53(&r53);
                    let e = r53.exp - 1; // unbiased IEEE exponent
                    let bits = ((e + 1023) as u64) << 52 | (m53 & 0x000F_FFFF_FFFF_FFFF);
                    let value = f64::from_bits(bits);
                    let flags = if ix53 {
                        FpFlags::INEXACT
                    } else {
                        FpFlags::NONE
                    };
                    return (if self.sign { -value } else { value }, flags);
                }
                // Tiny result: round the ORIGINAL mantissa directly onto
                // the subnormal grid, m = round(|x| / 2^-1074). Going back
                // through `from_int` would re-round r53 (double rounding)
                // and its MIN_PREC floor can't express the 1-bit precision
                // of the lowest binades. Raise UNDERFLOW iff the delivery
                // is inexact — tiny *and* inexact, the masked-x64 rule.
                // `|x| = mant × 2^(exp − prec)`, so `m_exact = mant × 2^k`.
                let k = self.exp - i64::from(self.prec) + 1074;
                let mut m: u64;
                let inexact;
                if k >= 0 {
                    // Exact left shift: tininess bounds the result under
                    // 2^53, so only the low limb can be populated.
                    debug_assert!(self.mant.iter().skip(1).all(|&l| l == 0));
                    m = self.mant[0] << k;
                    inexact = false;
                } else {
                    let cut = (-k) as usize;
                    let round_bit = bit_at(&self.mant, cut - 1);
                    let sticky = any_bits_below(&self.mant, cut - 1);
                    m = shift_right_into(&self.mant, cut, 1)[0];
                    inexact = round_bit || sticky;
                    let up = match rm {
                        Round::NearestEven => round_bit && (sticky || m & 1 == 1),
                        Round::Up => inexact && !self.sign,
                        Round::Down => inexact && self.sign,
                        Round::Zero => false,
                    };
                    if up {
                        m += 1;
                    }
                }
                let flags = if inexact {
                    // Tininess was judged on the unbounded rounding above,
                    // so UNDERFLOW applies even if the grid rounding
                    // carries up to the min-normal boundary.
                    FpFlags::UNDERFLOW | FpFlags::INEXACT
                } else {
                    FpFlags::NONE
                };
                // m ∈ [0, 2^52]: the subnormal encodings, with m = 2^52
                // landing exactly on the min-normal bit pattern.
                debug_assert!(m <= 1 << 52);
                let value = f64::from_bits(m);
                (if self.sign { -value } else { value }, flags)
            }
        }
    }

    /// Truncate toward zero and return `(sign, |integer part|, inexact)`
    /// exactly, for values with `|x| < 2^127`. `None` for NaN, ±∞, or
    /// out-of-range magnitudes.
    pub fn to_integer_parts(&self) -> Option<(bool, u128, bool)> {
        match self.kind {
            Kind::Zero => return Some((self.sign, 0, false)),
            Kind::Finite => {}
            _ => return None,
        }
        if self.exp <= 0 {
            return Some((self.sign, 0, true)); // |x| < 1, nonzero
        }
        if self.exp > 127 {
            return None;
        }
        // integer = mant × 2^(exp − prec), truncated.
        let frac_bits = i64::from(self.prec) - self.exp;
        if frac_bits <= 0 {
            // Pure left shift; exp ≤ 127 bounds the result.
            let mut mag = 0u128;
            for (i, &l) in self.mant.iter().enumerate() {
                if l != 0 {
                    let pos = i as i64 * 64 - frac_bits;
                    if pos >= 128 {
                        return None;
                    }
                    mag |= u128::from(l) << pos;
                }
            }
            return Some((self.sign, mag, false));
        }
        let inexact = any_bits_below(&self.mant, frac_bits as usize);
        let shifted = shift_right_into(&self.mant, frac_bits as usize, 2);
        let mag = u128::from(shifted[0]) | (u128::from(shifted[1]) << 64);
        Some((self.sign, mag, inexact))
    }

    /// Sign bit (true = negative). Meaningful for zero and infinity too.
    pub fn sign(&self) -> bool {
        self.sign
    }

    /// Value class.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// Precision in bits.
    pub fn prec(&self) -> u32 {
        self.prec
    }

    /// Binary exponent: for finite nonzero values, `|x| ∈ [2^(exp−1), 2^exp)`.
    pub fn exp(&self) -> i64 {
        self.exp
    }

    /// True for NaN.
    pub fn is_nan(&self) -> bool {
        self.kind == Kind::Nan
    }

    /// True for ±0.
    pub fn is_zero(&self) -> bool {
        self.kind == Kind::Zero
    }

    /// True for ±∞.
    pub fn is_inf(&self) -> bool {
        self.kind == Kind::Inf
    }

    /// Negate (exact).
    pub fn neg(&self) -> Self {
        let mut r = self.clone();
        if r.kind != Kind::Nan {
            r.sign = !r.sign;
        }
        r
    }

    /// Absolute value (exact).
    pub fn abs(&self) -> Self {
        let mut r = self.clone();
        if r.kind != Kind::Nan {
            r.sign = false;
        }
        r
    }

    /// Compare magnitudes of two finite nonzero values.
    fn cmp_mag(&self, other: &Self) -> Ordering {
        debug_assert!(self.kind == Kind::Finite && other.kind == Kind::Finite);
        match self.exp.cmp(&other.exp) {
            Ordering::Equal => {}
            ord => return ord,
        }
        // Compare mantissas MSB-first (different precisions allowed).
        let na = self.mant.len();
        let nb = other.mant.len();
        let n = na.max(nb);
        for i in 0..n {
            // i-th limb from the top of each (mantissas are LSB-aligned with
            // MSB at prec-1; align by comparing top-aligned bit windows).
            let a = top_window(&self.mant, self.prec, i);
            let b = top_window(&other.mant, other.prec, i);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Total IEEE comparison (None = unordered).
    pub fn partial_cmp_ieee(&self, other: &Self) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        let a_zero = self.is_zero();
        let b_zero = other.is_zero();
        if a_zero && b_zero {
            return Some(Ordering::Equal);
        }
        // Order by sign first (-x < +y), with zero sign ignored vs nonzero.
        let sa = if a_zero { false } else { self.sign };
        let sb = if b_zero { false } else { other.sign };
        let a_neg = !a_zero && self.sign;
        let b_neg = !b_zero && other.sign;
        let _ = (sa, sb);
        if a_zero {
            return Some(if b_neg {
                Ordering::Greater
            } else {
                Ordering::Less
            });
        }
        if b_zero {
            return Some(if a_neg {
                Ordering::Less
            } else {
                Ordering::Greater
            });
        }
        match (a_neg, b_neg) {
            (true, false) => return Some(Ordering::Less),
            (false, true) => return Some(Ordering::Greater),
            _ => {}
        }
        let mag = match (self.kind, other.kind) {
            (Kind::Inf, Kind::Inf) => Ordering::Equal,
            (Kind::Inf, _) => Ordering::Greater,
            (_, Kind::Inf) => Ordering::Less,
            _ => self.cmp_mag(other),
        };
        Some(if a_neg { mag.reverse() } else { mag })
    }

    /// Render as a decimal string with `digits` significant digits
    /// (used by the output wrapper to show full shadow precision).
    pub fn to_decimal(&self, digits: usize) -> String {
        match self.kind {
            Kind::Nan => return "nan".to_string(),
            Kind::Inf => return if self.sign { "-inf" } else { "inf" }.to_string(),
            Kind::Zero => return if self.sign { "-0.0" } else { "0.0" }.to_string(),
            Kind::Finite => {}
        }
        // Scale to an integer with `digits` decimal digits:
        // |x| = m × 2^(exp - prec); d10 ≈ floor(exp × log10(2)).
        let exp10 = (self.exp as f64 * std::f64::consts::LOG10_2).floor() as i64;
        // n = |x| × 10^(digits - 1 - exp10), rounded.
        let shift10 = digits as i64 - 1 - exp10;
        let mut num = self.mant.clone();
        let mut bin_exp = self.exp - i64::from(self.prec); // unit exponent
                                                           // Multiply by 10^shift10 (or divide).
        let (p10, neg10) = (shift10.unsigned_abs(), shift10 < 0);
        let ten = pow10_limbs(p10);
        if !neg10 {
            num = limb::mul(&num, &ten);
        } else {
            // num / 10^p: scale numerator up to keep precision, divide.
            let extra = ten.len() + 2;
            let mut scaled = vec![0u64; extra];
            scaled.extend_from_slice(&num);
            num = scaled;
            bin_exp -= extra as i64 * 64;
            let mut den = ten.clone();
            let lz = limb::leading_zeros(&den) % 64;
            let mut n2 = num.clone();
            n2.push(0);
            limb::shl_small(&mut den, lz);
            limb::shl_small(&mut n2, lz);
            let (q, _) = limb::divrem(&n2, &den);
            num = q;
        }
        // Now apply the binary exponent.
        if bin_exp > 0 {
            let extra = (bin_exp as usize).div_ceil(64);
            num.resize(num.len() + extra, 0);
            let limb_shift = bin_exp as usize / 64;
            num.rotate_right(limb_shift);
            limb::shl_small(&mut num, (bin_exp % 64) as u32);
        } else if bin_exp < 0 {
            // Round-to-nearest: add half an ulp of the discarded range.
            let sh = (-bin_exp) as usize;
            let mut half = vec![0u64; sh / 64 + 1];
            half[(sh - 1) / 64] = 1u64 << ((sh - 1) % 64);
            num.resize(num.len().max(half.len()) + 1, 0);
            limb::add_assign(&mut num, &half);
            num = shift_right_into(&num, sh, num.len().saturating_sub(sh / 64).max(1));
        }
        let dec = limbs_to_decimal(&limb::trim(&num));
        let dec = if dec.len() > digits {
            // The log10 estimate was off by one: drop a digit (rounded).
            round_decimal_string(&dec, digits)
        } else {
            dec
        };
        // value = dec × 10^(exp10 + 1 − digits); as d.ddd… × 10^K the
        // decimal exponent is K = exp10 + (len − digits).
        let exp10_final = exp10 + (dec.len() as i64 - digits as i64);
        let sign = if self.sign { "-" } else { "" };
        if dec.len() == 1 {
            format!("{sign}{dec}e{exp10_final}")
        } else {
            format!("{sign}{}.{}e{}", &dec[..1], &dec[1..], exp10_final)
        }
    }
}

/// Bit `i` (from the LSB) of a limb slice.
fn bit_at(a: &[u64], i: usize) -> bool {
    a.get(i / 64).is_some_and(|&l| l >> (i % 64) & 1 == 1)
}

/// True if any bit strictly below position `i` is set.
fn any_bits_below(a: &[u64], i: usize) -> bool {
    let limb_i = i / 64;
    for (j, &l) in a.iter().enumerate() {
        if j < limb_i {
            if l != 0 {
                return true;
            }
        } else if j == limb_i {
            return l & ((1u64 << (i % 64)) - 1) != 0;
        }
    }
    false
}

/// Shift right by `cut` bits into a vector of exactly `nlimbs` limbs.
#[allow(clippy::needless_range_loop)] // reads offsets i+k relative to the index
fn shift_right_into(a: &[u64], cut: usize, nlimbs: usize) -> Vec<u64> {
    let limb_cut = cut / 64;
    let bit_cut = (cut % 64) as u32;
    let mut out = vec![0u64; nlimbs];
    for i in 0..nlimbs {
        let lo = a.get(i + limb_cut).copied().unwrap_or(0);
        let hi = a.get(i + limb_cut + 1).copied().unwrap_or(0);
        out[i] = if bit_cut == 0 {
            lo
        } else {
            (lo >> bit_cut) | (hi << (64 - bit_cut))
        };
    }
    out
}

/// Shift left by `shift` bits into a vector of exactly `nlimbs` limbs.
#[allow(clippy::needless_range_loop)] // reads offsets i-k relative to the index
fn shift_left_into(a: &[u64], shift: usize, nlimbs: usize) -> Vec<u64> {
    let limb_shift = shift / 64;
    let bit_shift = (shift % 64) as u32;
    let mut out = vec![0u64; nlimbs];
    for i in 0..nlimbs {
        let src_hi = i.checked_sub(limb_shift).and_then(|j| a.get(j)).copied();
        let src_lo = i
            .checked_sub(limb_shift + 1)
            .and_then(|j| a.get(j))
            .copied();
        let hi = src_hi.unwrap_or(0);
        let lo = src_lo.unwrap_or(0);
        out[i] = if bit_shift == 0 {
            hi
        } else {
            (hi << bit_shift) | (lo >> (64 - bit_shift))
        };
    }
    out
}

/// The `i`-th 64-bit window from the top of a prec-bit mantissa, for
/// magnitude comparison between values of different precision.
fn top_window(mant: &[u64], prec: u32, i: usize) -> u64 {
    // Bit position of the top of window i (exclusive): prec - 64*i.
    let top = i64::from(prec) - 64 * i as i64;
    if top <= 0 {
        return 0;
    }
    // Extract bits [top-64, top).
    let lo_bit = top - 64;
    let mut out = 0u64;
    for b in 0..64 {
        let pos = lo_bit + b;
        if pos >= 0 && bit_at(mant, pos as usize) {
            out |= 1 << b;
        }
    }
    out
}

/// Widen a ≤53-bit mantissa to exactly 53 bits as a u64.
fn widen_to_53(r: &BigFloat) -> u64 {
    debug_assert!(r.prec <= 64);
    let m = r.mant[0];
    if r.prec >= 53 {
        m >> (r.prec - 53)
    } else {
        m << (53 - r.prec)
    }
}

/// 10^p as limbs.
fn pow10_limbs(p: u64) -> Vec<u64> {
    let mut out = vec![1u64];
    for _ in 0..p {
        let mut carry = 0u128;
        for l in out.iter_mut() {
            let t = u128::from(*l) * 10 + carry;
            *l = t as u64;
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
    }
    out
}

/// Decimal string of a limb integer.
fn limbs_to_decimal(a: &[u64]) -> String {
    if limb::is_zero(a) {
        return "0".to_string();
    }
    let mut digits = Vec::new();
    let mut cur = a.to_vec();
    while !limb::is_zero(&cur) {
        // Divide by 10^19 (largest power of 10 in u64) for speed.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut rem = 0u128;
        for i in (0..cur.len()).rev() {
            let t = (rem << 64) | u128::from(cur[i]);
            cur[i] = (t / u128::from(CHUNK)) as u64;
            rem = t % u128::from(CHUNK);
        }
        cur = limb::trim(&cur);
        if limb::is_zero(&cur) {
            digits.push(format!("{rem}"));
        } else {
            digits.push(format!("{rem:019}"));
        }
    }
    digits.reverse();
    digits.concat()
}

/// Round a decimal digit string to `n` digits (half-up).
fn round_decimal_string(s: &str, n: usize) -> String {
    if s.len() <= n {
        return s.to_string();
    }
    let keep: Vec<u8> = s.as_bytes()[..n].to_vec();
    let next = s.as_bytes()[n];
    let mut keep = keep;
    if next >= b'5' {
        let mut i = n;
        loop {
            if i == 0 {
                keep.insert(0, b'1');
                keep.pop();
                break;
            }
            i -= 1;
            if keep[i] == b'9' {
                keep[i] = b'0';
            } else {
                keep[i] += 1;
                break;
            }
        }
    }
    String::from_utf8(keep).unwrap()
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

/// NaN propagation + invalid detection for two-operand ops. Returns the
/// special-case result if either input is NaN.
fn check_nan2(a: &BigFloat, b: &BigFloat, prec: u32) -> Option<(BigFloat, FpFlags)> {
    if a.is_nan() || b.is_nan() {
        Some((BigFloat::nan(prec), FpFlags::NONE))
    } else {
        None
    }
}

fn inexact_flag(inexact: bool) -> FpFlags {
    if inexact {
        FpFlags::INEXACT
    } else {
        FpFlags::NONE
    }
}

/// Correctly-rounded addition to `prec` bits.
pub fn add(a: &BigFloat, b: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    if let Some(r) = check_nan2(a, b, prec) {
        return r;
    }
    match (a.kind, b.kind) {
        (Kind::Inf, Kind::Inf) => {
            if a.sign == b.sign {
                return (BigFloat::inf(a.sign, prec), FpFlags::NONE);
            }
            return (BigFloat::nan(prec), FpFlags::INVALID);
        }
        (Kind::Inf, _) => return (BigFloat::inf(a.sign, prec), FpFlags::NONE),
        (_, Kind::Inf) => return (BigFloat::inf(b.sign, prec), FpFlags::NONE),
        (Kind::Zero, Kind::Zero) => {
            let sign = if a.sign == b.sign {
                a.sign
            } else {
                rm == Round::Down
            };
            return (BigFloat::zero(sign, prec), FpFlags::NONE);
        }
        (Kind::Zero, _) => {
            let (r, ix) = round_to(b, prec, rm);
            return (r, inexact_flag(ix));
        }
        (_, Kind::Zero) => {
            let (r, ix) = round_to(a, prec, rm);
            return (r, inexact_flag(ix));
        }
        _ => {}
    }
    // Both finite nonzero. Order by magnitude: x is the larger.
    let (x, y) = if a.cmp_mag(b) == Ordering::Less {
        (b, a)
    } else {
        (a, b)
    };
    if x.sign != y.sign && x.cmp_mag(y) == Ordering::Equal {
        let sign = rm == Round::Down;
        return (BigFloat::zero(sign, prec), FpFlags::NONE);
    }
    let same_sign = x.sign == y.sign;
    let ex = x.exp - i64::from(x.prec); // unit exponent of x's mantissa
                                        // Working window: target precision + one guard limb + headroom, aligned
                                        // to x's MSB — and always wide enough to hold ALL of x (whose own
                                        // precision may exceed the target, e.g. when re-rounding downward), so
                                        // no x bits are silently dropped without reaching the sticky path.
    let wl = (prec.max(x.prec) as usize).div_ceil(64) + 2;
    let wbits = wl as u64 * 64;
    // Place x's MSB at bit (wbits - 2): one headroom bit at the top.
    let msb_target = wbits as i64 - 2;
    let x_msb = i64::from(x.prec) - 1; // x's MSB position within its mantissa
    let shift_x = msb_target - x_msb;
    let (wx, sx) = place(&x.mant, shift_x, wl);
    debug_assert!(!sx, "x must fit in the window exactly above guard");
    // y's MSB goes d bits lower (d = weighted exponent difference).
    let y_msb_target = msb_target - (x.exp - y.exp);
    let shift_y = y_msb_target - (i64::from(y.prec) - 1);
    let (wy, mut sticky) = place(&y.mant, shift_y, wl);
    let unit = ex + x_msb - msb_target; // weight of window bit 0
    let mut w = wx;
    if same_sign {
        let carry = limb::add_assign(&mut w, &wy);
        debug_assert!(!carry, "headroom bit absorbs the carry");
        let (r, ix) = BigFloat::from_int(x.sign, unit, &w, sticky, prec, rm);
        (r, inexact_flag(ix))
    } else {
        let borrow = limb::sub_assign(&mut w, &wy);
        debug_assert!(!borrow, "x has the larger magnitude");
        if sticky {
            // True value is (w - δ) with 0 < δ < 1: bracket as w-1 + ε.
            let borrow = limb::sub_assign(&mut w, &[1]);
            debug_assert!(!borrow);
            if limb::is_zero(&w) {
                // Cancellation down to below one window ulp can only happen
                // when d was huge and w was exactly 1; the result is then
                // dominated by the sticky residue.
                sticky = true;
            }
        }
        let (r, ix) = BigFloat::from_int(x.sign, unit, &w, sticky, prec, rm);
        (r, inexact_flag(ix))
    }
}

/// Place a mantissa into a `wl`-limb window shifted by `shift` bits
/// (positive = left). Bits shifted below the window are returned as sticky.
fn place(mant: &[u64], shift: i64, wl: usize) -> (Vec<u64>, bool) {
    if shift >= 0 {
        (shift_left_into(mant, shift as usize, wl), false)
    } else {
        let cut = (-shift) as usize;
        let total = mant.len() * 64;
        let sticky = if cut >= total {
            !limb::is_zero(mant)
        } else {
            any_bits_below(mant, cut)
        };
        if cut >= total {
            (vec![0; wl], sticky)
        } else {
            (shift_right_into(mant, cut, wl), sticky)
        }
    }
}

/// Correctly-rounded subtraction.
pub fn sub(a: &BigFloat, b: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    add(a, &b.neg(), prec, rm)
}

/// Re-round an existing value to a (possibly smaller) precision.
pub fn round_to(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, bool) {
    match a.kind {
        Kind::Finite => {
            BigFloat::from_int(a.sign, a.exp - i64::from(a.prec), &a.mant, false, prec, rm)
        }
        _ => {
            let mut r = a.clone();
            r.prec = prec;
            (r, false)
        }
    }
}

/// Correctly-rounded multiplication to `prec` bits.
pub fn mul(a: &BigFloat, b: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    if let Some(r) = check_nan2(a, b, prec) {
        return r;
    }
    let sign = a.sign != b.sign;
    match (a.kind, b.kind) {
        (Kind::Zero, Kind::Inf) | (Kind::Inf, Kind::Zero) => {
            return (BigFloat::nan(prec), FpFlags::INVALID)
        }
        (Kind::Inf, _) | (_, Kind::Inf) => return (BigFloat::inf(sign, prec), FpFlags::NONE),
        (Kind::Zero, _) | (_, Kind::Zero) => return (BigFloat::zero(sign, prec), FpFlags::NONE),
        _ => {}
    }
    let product = limb::mul(&a.mant, &b.mant);
    let unit = (a.exp - i64::from(a.prec)) + (b.exp - i64::from(b.prec));
    let (r, ix) = BigFloat::from_int(sign, unit, &product, false, prec, rm);
    (r, inexact_flag(ix))
}

/// Correctly-rounded division to `prec` bits.
pub fn div(a: &BigFloat, b: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    if let Some(r) = check_nan2(a, b, prec) {
        return r;
    }
    let sign = a.sign != b.sign;
    match (a.kind, b.kind) {
        (Kind::Inf, Kind::Inf) | (Kind::Zero, Kind::Zero) => {
            return (BigFloat::nan(prec), FpFlags::INVALID)
        }
        (Kind::Inf, _) => return (BigFloat::inf(sign, prec), FpFlags::NONE),
        (_, Kind::Inf) => return (BigFloat::zero(sign, prec), FpFlags::NONE),
        (Kind::Zero, _) => return (BigFloat::zero(sign, prec), FpFlags::NONE),
        (_, Kind::Zero) => return (BigFloat::inf(sign, prec), FpFlags::DIVZERO),
        _ => {}
    }
    // Extend the numerator so the integer quotient carries ≥ prec + 2 bits:
    // quotient bits ≈ 64·(nn − nd) − Δ with Δ ∈ {0, 1}.
    let nd = b.mant.len();
    let extra = (prec as usize + 2).div_ceil(64) + 1 + nd.saturating_sub(a.mant.len());
    let mut num = vec![0u64; extra];
    num.extend_from_slice(&a.mant);
    // Normalize the divisor for Knuth D; shift numerator equally.
    let mut den = b.mant.clone();
    let lz = limb::leading_zeros(&den) % 64;
    num.push(0);
    limb::shl_small(&mut den, lz);
    limb::shl_small(&mut num, lz);
    let den = limb::trim(&den);
    let (q, r) = limb::divrem(&num, &den);
    let sticky = !limb::is_zero(&r);
    // a / b = q × 2^(ua − ub − 64·extra) where ua, ub are unit exponents.
    let unit = (a.exp - i64::from(a.prec)) - (b.exp - i64::from(b.prec)) - 64 * extra as i64;
    let (res, ix) = BigFloat::from_int(sign, unit, &q, sticky, prec, rm);
    (res, inexact_flag(ix))
}

/// Correctly-rounded square root to `prec` bits.
pub fn sqrt(a: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    match a.kind {
        Kind::Nan => return (BigFloat::nan(prec), FpFlags::NONE),
        Kind::Zero => return (BigFloat::zero(a.sign, prec), FpFlags::NONE),
        Kind::Inf => {
            if a.sign {
                return (BigFloat::nan(prec), FpFlags::INVALID);
            }
            return (BigFloat::inf(false, prec), FpFlags::NONE);
        }
        Kind::Finite => {
            if a.sign {
                return (BigFloat::nan(prec), FpFlags::INVALID);
            }
        }
    }
    // value = m × 2^u. Shift m left so the total shift makes u even and m
    // carries ≥ 2·(prec + 2) bits; then sqrt(m·2^u) = isqrt(m) × 2^(u/2).
    let unit = a.exp - i64::from(a.prec);
    let want_bits = 2 * (prec as usize + 2) + 2;
    let have_bits = a.prec as usize; // significant bits, not storage bits
    let mut shift = want_bits.saturating_sub(have_bits) as i64;
    if (unit - shift) % 2 != 0 {
        shift += 1;
    }
    let nl = (have_bits + shift as usize).div_ceil(64);
    let m = shift_left_into(&a.mant, shift as usize, nl);
    let (s, r) = limb::isqrt(&m);
    let sticky = !limb::is_zero(&r);
    let (res, ix) = BigFloat::from_int(false, (unit - shift) / 2, &s, sticky, prec, rm);
    (res, inexact_flag(ix))
}

/// Fused multiply-add `a·b + c`, correctly rounded (single rounding).
pub fn fma(a: &BigFloat, b: &BigFloat, c: &BigFloat, prec: u32, rm: Round) -> (BigFloat, FpFlags) {
    if a.is_nan() || b.is_nan() || c.is_nan() {
        return (BigFloat::nan(prec), FpFlags::NONE);
    }
    // Compute the product exactly, then one rounded addition.
    let pa = a.prec + b.prec;
    let (p, pf) = mul(a, b, pa.max(MIN_PREC), Round::NearestEven);
    if pf.contains(FpFlags::INVALID) {
        return (BigFloat::nan(prec), FpFlags::INVALID);
    }
    debug_assert!(!pf.contains(FpFlags::INEXACT) || !p.kind.eq(&Kind::Finite));
    add(&p, c, prec, rm)
}

/// IEEE quiet comparison (`ucomisd` analogue). BigFloat has no signaling
/// NaNs of its own, so `IE` is raised only by [`cmp_signaling`].
pub fn cmp_quiet(a: &BigFloat, b: &BigFloat) -> (CmpResult, FpFlags) {
    match a.partial_cmp_ieee(b) {
        None => (CmpResult::Unordered, FpFlags::NONE),
        Some(Ordering::Less) => (CmpResult::Less, FpFlags::NONE),
        Some(Ordering::Equal) => (CmpResult::Equal, FpFlags::NONE),
        Some(Ordering::Greater) => (CmpResult::Greater, FpFlags::NONE),
    }
}

/// IEEE signaling comparison (`comisd` analogue): `IE` on unordered.
pub fn cmp_signaling(a: &BigFloat, b: &BigFloat) -> (CmpResult, FpFlags) {
    let (r, mut f) = cmp_quiet(a, b);
    if r == CmpResult::Unordered {
        f |= FpFlags::INVALID;
    }
    (r, f)
}

/// Round toward −∞ to an integral value (exact operation).
pub fn floor(a: &BigFloat, prec: u32) -> (BigFloat, FpFlags) {
    round_integral(a, prec, true)
}

/// Round toward +∞ to an integral value (exact operation).
pub fn ceil(a: &BigFloat, prec: u32) -> (BigFloat, FpFlags) {
    round_integral(a, prec, false)
}

#[allow(clippy::needless_range_loop)] // masks limbs around a bit boundary
fn round_integral(a: &BigFloat, prec: u32, is_floor: bool) -> (BigFloat, FpFlags) {
    match a.kind {
        Kind::Finite => {}
        _ => {
            let mut r = a.clone();
            r.prec = prec;
            return (r, FpFlags::NONE);
        }
    }
    if a.exp <= 0 {
        // |a| < 1.
        let down = a.sign == is_floor; // floor of negative / ceil of positive
        let r = if down {
            // Round away from zero to ±1.
            let (one, _) = BigFloat::from_f64(1.0, prec, Round::NearestEven);
            let mut one = one;
            one.sign = a.sign;
            one
        } else {
            BigFloat::zero(a.sign, prec)
        };
        return (r, FpFlags::NONE);
    }
    // Clear the fractional bits: bits below (prec - exp).
    let frac_bits = i64::from(a.prec) - a.exp;
    if frac_bits <= 0 {
        let (r, ix) = round_to(a, prec, Round::Zero);
        debug_assert!(!ix || prec < a.prec);
        return (r, inexact_flag(ix));
    }
    let mut m = a.mant.clone();
    let had_frac = any_bits_below(&m, frac_bits as usize);
    for i in 0..m.len() {
        let lo = frac_bits as usize;
        if (i + 1) * 64 <= lo {
            m[i] = 0;
        } else if i * 64 < lo {
            m[i] &= !((1u64 << (lo - i * 64)) - 1);
        }
    }
    let mut trunc = BigFloat {
        sign: a.sign,
        kind: Kind::Finite,
        exp: a.exp,
        mant: m,
        prec: a.prec,
    };
    if limb::is_zero(&trunc.mant) {
        trunc = BigFloat::zero(a.sign, a.prec);
    }
    if had_frac && a.sign == is_floor {
        // floor(neg) / ceil(pos): step away from zero by 1.
        let (one, _) = BigFloat::from_f64(if a.sign { -1.0 } else { 1.0 }, 64, Round::NearestEven);
        let (r, f) = add(&trunc, &one, prec, Round::NearestEven);
        debug_assert!(!f.contains(FpFlags::INEXACT) || prec < a.prec);
        return (r, f);
    }
    let (r, ix) = round_to(&trunc, prec, Round::Zero);
    (r, inexact_flag(ix))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(x: f64, prec: u32) -> BigFloat {
        BigFloat::from_f64(x, prec, Round::NearestEven).0
    }

    fn to_f(v: &BigFloat) -> f64 {
        v.to_f64(Round::NearestEven).0
    }

    #[test]
    fn f64_roundtrip() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            0.5,
            std::f64::consts::PI,
            1e300,
            -1e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            4.9e-324,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let v = bf(x, 53);
            let (back, flags) = v.to_f64(Round::NearestEven);
            assert_eq!(back.to_bits(), x.to_bits(), "roundtrip of {x}");
            assert_eq!(flags, FpFlags::NONE, "roundtrip of {x} must be exact");
        }
        assert!(bf(f64::NAN, 53).is_nan());
    }

    #[test]
    fn add_matches_f64_at_53() {
        let xs = [1.0, 0.1, 0.2, -0.3, 1e20, -1e-20, 3.5, 1e-300];
        for &a in &xs {
            for &b in &xs {
                let (r, _) = add(&bf(a, 53), &bf(b, 53), 53, Round::NearestEven);
                assert_eq!(to_f(&r).to_bits(), (a + b).to_bits(), "{a} + {b}");
            }
        }
    }

    #[test]
    fn add_inexact_flag_matches() {
        let (_, f) = add(&bf(0.1, 53), &bf(0.2, 53), 53, Round::NearestEven);
        assert!(f.contains(FpFlags::INEXACT));
        let (_, f) = add(&bf(1.0, 53), &bf(2.0, 53), 53, Round::NearestEven);
        assert!(f.is_empty());
        // At higher precision 0.1+0.2 (the 53-bit values) is exact.
        let (_, f) = add(&bf(0.1, 53), &bf(0.2, 53), 120, Round::NearestEven);
        assert!(f.is_empty());
    }

    #[test]
    fn mul_matches_f64_at_53() {
        let xs = [1.0, 0.1, 0.2, -0.3, 1e20, -1e-20, 3.5, 7.0];
        for &a in &xs {
            for &b in &xs {
                let (r, _) = mul(&bf(a, 53), &bf(b, 53), 53, Round::NearestEven);
                assert_eq!(to_f(&r).to_bits(), (a * b).to_bits(), "{a} * {b}");
            }
        }
    }

    #[test]
    fn div_matches_f64_at_53() {
        let xs = [1.0, 0.1, 0.2, -0.3, 1e20, -1e-20, 3.5, 7.0];
        for &a in &xs {
            for &b in &xs {
                let (r, _) = div(&bf(a, 53), &bf(b, 53), 53, Round::NearestEven);
                assert_eq!(to_f(&r).to_bits(), (a / b).to_bits(), "{a} / {b}");
            }
        }
        let (r, f) = div(&bf(1.0, 53), &bf(0.0, 53), 53, Round::NearestEven);
        assert!(r.is_inf());
        assert!(f.contains(FpFlags::DIVZERO));
        let (r, f) = div(&bf(0.0, 53), &bf(0.0, 53), 53, Round::NearestEven);
        assert!(r.is_nan());
        assert!(f.contains(FpFlags::INVALID));
    }

    #[test]
    fn sqrt_matches_f64_at_53() {
        for x in [2.0, 3.0, 4.0, 0.25, 1e10, 1e-10, 123456.789] {
            let (r, _) = sqrt(&bf(x, 53), 53, Round::NearestEven);
            assert_eq!(to_f(&r).to_bits(), x.sqrt().to_bits(), "sqrt({x})");
        }
        let (r, f) = sqrt(&bf(-1.0, 53), 53, Round::NearestEven);
        assert!(r.is_nan());
        assert!(f.contains(FpFlags::INVALID));
        let (_, f) = sqrt(&bf(4.0, 53), 53, Round::NearestEven);
        assert!(f.is_empty(), "sqrt(4) exact");
        let (_, f) = sqrt(&bf(2.0, 53), 53, Round::NearestEven);
        assert!(f.contains(FpFlags::INEXACT));
    }

    #[test]
    fn higher_precision_is_more_accurate() {
        // 1/3 at 200 bits, times 3, re-rounded to 53 bits ≈ 1 much more
        // closely than the 53-bit computation.
        let one = bf(1.0, 200);
        let three = bf(3.0, 200);
        let (third, _) = div(&one, &three, 200, Round::NearestEven);
        let (recon, _) = mul(&third, &three, 200, Round::NearestEven);
        let (diff, _) = sub(&recon, &one, 200, Round::NearestEven);
        if !diff.is_zero() {
            // |diff| < 2^-198
            assert!(diff.exp() < -190, "exp = {}", diff.exp());
        }
    }

    #[test]
    fn cancellation_is_exact() {
        // Sterbenz: nearby values subtract exactly.
        let (r, f) = sub(
            &bf(1.0, 53),
            &bf(0.9999999999999999, 53),
            53,
            Round::NearestEven,
        );
        let expect = 1.0 - 0.9999999999999999;
        assert_eq!(to_f(&r), expect);
        assert!(f.is_empty());
    }

    #[test]
    fn directed_rounding() {
        let one = bf(1.0, 53);
        let three = bf(3.0, 53);
        let (down, _) = div(&one, &three, 53, Round::Down);
        let (up, _) = div(&one, &three, 53, Round::Up);
        let d = to_f(&down);
        let u = to_f(&up);
        assert!(d < u);
        assert_eq!(u, f64::from_bits(d.to_bits() + 1), "adjacent ulps");
        // The true 1/3 lies strictly between the two directed roundings.
        assert!(d <= 1.0 / 3.0 && u >= 1.0 / 3.0);
        // Round-to-zero on a negative quotient.
        let (z, _) = div(&bf(-1.0, 53), &three, 53, Round::Zero);
        assert_eq!(to_f(&z), -d);
    }

    #[test]
    fn comparisons() {
        assert_eq!(cmp_quiet(&bf(1.0, 53), &bf(2.0, 53)).0, CmpResult::Less);
        assert_eq!(cmp_quiet(&bf(2.0, 53), &bf(1.0, 53)).0, CmpResult::Greater);
        assert_eq!(cmp_quiet(&bf(1.0, 53), &bf(1.0, 53)).0, CmpResult::Equal);
        assert_eq!(cmp_quiet(&bf(0.0, 53), &bf(-0.0, 53)).0, CmpResult::Equal);
        assert_eq!(cmp_quiet(&bf(-1.0, 53), &bf(1.0, 53)).0, CmpResult::Less);
        let nan = BigFloat::nan(53);
        assert_eq!(cmp_quiet(&nan, &bf(1.0, 53)).0, CmpResult::Unordered);
        assert!(cmp_quiet(&nan, &bf(1.0, 53)).1.is_empty());
        assert!(cmp_signaling(&nan, &bf(1.0, 53))
            .1
            .contains(FpFlags::INVALID));
        // Cross-precision comparison.
        assert_eq!(cmp_quiet(&bf(1.5, 200), &bf(1.5, 53)).0, CmpResult::Equal);
    }

    #[test]
    fn floor_ceil() {
        for (x, fl, ce) in [
            (2.5, 2.0, 3.0),
            (-2.5, -3.0, -2.0),
            (2.0, 2.0, 2.0),
            (0.3, 0.0, 1.0),
            (-0.3, -1.0, 0.0),
            (0.0, 0.0, 0.0),
        ] {
            let v = bf(x, 53);
            assert_eq!(to_f(&floor(&v, 53).0), fl, "floor({x})");
            assert_eq!(to_f(&ceil(&v, 53).0), ce, "ceil({x})");
        }
    }

    #[test]
    fn fma_single_rounding() {
        // fma(x, y, -x*y_rounded) detects the rounding residual: with exact
        // fma the result equals the f64 residual computed by hardware fma.
        let x = 0.1f64;
        let y = 0.3f64;
        let p = x * y;
        let (r, _) = fma(&bf(x, 53), &bf(y, 53), &bf(-p, 53), 53, Round::NearestEven);
        assert_eq!(to_f(&r), x.mul_add(y, -p));
    }

    #[test]
    fn subnormal_demotion() {
        // A value in the f64 subnormal range demotes correctly.
        let huge = mul(&bf(1e300, 200), &bf(1e10, 200), 200, Round::NearestEven).0;
        let (v, _) = div(&bf(1.0, 200), &huge, 200, Round::NearestEven);
        // 1e-310 is subnormal.
        let (d, flags) = v.to_f64(Round::NearestEven);
        assert!(d > 0.0 && d.is_subnormal(), "demoted to {d}");
        assert!(flags.contains(FpFlags::INEXACT) || !flags.contains(FpFlags::UNDERFLOW));
        // Overflow on demotion.
        let big = mul(&bf(1e300, 200), &bf(1e300, 200), 200, Round::NearestEven).0;
        let (d, flags) = big.to_f64(Round::NearestEven);
        assert!(d.is_infinite());
        assert!(flags.contains(FpFlags::OVERFLOW));
    }

    #[test]
    fn underflow_judged_after_rounding() {
        // (1 − 2^-53)·2^-1022 is exact at 53 bits and tiny (just below the
        // min normal), but the 52-bit subnormal delivery rounds up to
        // exactly 2^-1022. x64 masked mode judges tininess after rounding
        // with unbounded exponent, so this is UNDERFLOW|INEXACT even
        // though the delivered value is normal.
        // Build (1 − 2^-53)·2^-1022 = (1.11…1₂ × 2^-1022) / 2 exactly —
        // the f64 literal 2^-1075 would underflow to zero.
        let a = bf((-1022f64).exp2(), 200);
        let num = bf(f64::from_bits(0x001F_FFFF_FFFF_FFFF), 200);
        let (v, vf) = div(&num, &bf(2.0, 200), 200, Round::NearestEven);
        assert!(vf.is_empty(), "construction must be exact");
        let (d, flags) = v.to_f64(Round::NearestEven);
        assert_eq!(d, f64::MIN_POSITIVE);
        assert_eq!(flags, FpFlags::UNDERFLOW | FpFlags::INEXACT);

        // Just above the boundary: 2^-1022 + 2^-1082 rounds (unbounded) to
        // exactly 2^-1022 — not tiny, so INEXACT only.
        let (eps, _) = div(&a, &bf(60f64.exp2(), 200), 200, Round::NearestEven);
        let (w, _) = add(&a, &eps, 200, Round::NearestEven);
        let (d, flags) = w.to_f64(Round::NearestEven);
        assert_eq!(d, f64::MIN_POSITIVE);
        assert_eq!(flags, FpFlags::INEXACT);

        // An exactly representable subnormal raises nothing.
        let (d, flags) = bf((-1073f64).exp2(), 200).to_f64(Round::NearestEven);
        assert!(d.is_subnormal());
        assert_eq!(flags, FpFlags::NONE);

        // Deep underflow still reports UNDERFLOW|INEXACT.
        let (q, _) = mul(
            &bf((-1000f64).exp2(), 200),
            &bf((-1000f64).exp2(), 200),
            200,
            Round::NearestEven,
        );
        let (d, flags) = q.to_f64(Round::NearestEven);
        assert_eq!(d, 0.0);
        assert_eq!(flags, FpFlags::UNDERFLOW | FpFlags::INEXACT);
    }

    #[test]
    fn decimal_rendering() {
        let v = bf(1.5, 53);
        let s = v.to_decimal(5);
        assert_eq!(s, "1.5000e0", "{s}");
        let v = bf(-0.125, 53);
        let s = v.to_decimal(3);
        assert_eq!(s, "-1.25e-1", "{s}");
        let v = bf(100.0, 53);
        assert_eq!(v.to_decimal(4), "1.000e2");
        let v = bf(1.0e10, 53);
        assert_eq!(v.to_decimal(3), "1.00e10");
        let v = bf(2.5e-7, 53);
        assert_eq!(v.to_decimal(2), "2.5e-7");
        assert_eq!(BigFloat::zero(false, 53).to_decimal(3), "0.0");
        assert_eq!(BigFloat::inf(true, 53).to_decimal(3), "-inf");
    }
}
