//! [`BigFloatCtx`]: the [`ArithSystem`] binding for BigFloat — the analogue
//! of the paper's ~350-line MPFR binding (§4.3, §5.5).
//!
//! "In our implementation, the precision used by FPVM is determined by a
//! compile-time configurable parameter or environment variable" — here it is
//! a runtime constructor parameter (and the `reproduce` harness reads it
//! from the command line), defaulting to the paper's 200 bits.

use super::{self as bf, BigFloat};
use crate::flags::{FpFlags, Round};
use crate::softfp::CmpResult;
use crate::system::ArithSystem;

/// Default precision used throughout the paper's evaluation (§5.3: "The
/// emulation component includes MPFR computation with 200 bit precision").
pub const DEFAULT_PREC: u32 = 200;

/// Arbitrary-precision arithmetic system with a fixed working precision.
#[derive(Debug, Clone, Copy)]
pub struct BigFloatCtx {
    prec: u32,
}

impl Default for BigFloatCtx {
    fn default() -> Self {
        BigFloatCtx::new(DEFAULT_PREC)
    }
}

impl BigFloatCtx {
    /// Create a context computing at `prec` bits of mantissa.
    pub fn new(prec: u32) -> Self {
        BigFloatCtx {
            prec: prec.max(bf::MIN_PREC),
        }
    }

    /// The context precision in bits.
    pub fn prec(&self) -> u32 {
        self.prec
    }
}

impl ArithSystem for BigFloatCtx {
    type Value = BigFloat;

    fn name(&self) -> String {
        format!("bigfloat{}", self.prec)
    }

    fn from_f64(&self, x: f64) -> BigFloat {
        BigFloat::from_f64(x, self.prec, Round::NearestEven).0
    }
    fn to_f64(&self, v: &BigFloat, rm: Round) -> (f64, FpFlags) {
        v.to_f64(rm)
    }
    fn from_f32(&self, x: f32) -> (BigFloat, FpFlags) {
        BigFloat::from_f64(f64::from(x), self.prec, Round::NearestEven)
    }
    fn to_f32(&self, v: &BigFloat, rm: Round) -> (f32, FpFlags) {
        let (d, f1) = v.to_f64(rm);
        let (s, f2) = crate::softfp::cvt_f64_to_f32(d);
        (s, f1 | f2)
    }
    fn from_i32(&self, x: i32) -> (BigFloat, FpFlags) {
        BigFloat::from_f64(f64::from(x), self.prec, Round::NearestEven)
    }
    fn from_i64(&self, x: i64) -> (BigFloat, FpFlags) {
        // i64 may exceed 53 bits: build exactly from the integer mantissa.
        if x == 0 {
            return (BigFloat::zero(false, self.prec), FpFlags::NONE);
        }
        let (v, inexact) = BigFloat::from_int(
            x < 0,
            0,
            &[x.unsigned_abs()],
            false,
            self.prec,
            Round::NearestEven,
        );
        (
            v,
            if inexact {
                FpFlags::INEXACT
            } else {
                FpFlags::NONE
            },
        )
    }
    fn to_i32(&self, v: &BigFloat) -> (i32, FpFlags) {
        // Truncate from the full significand (like `to_i64` below), not via
        // an f64 intermediate: at prec 200 a >53-bit integer would round
        // twice on the old `to_f64(Round::Zero)` path.
        match v.to_integer_parts() {
            None => (i32::MIN, FpFlags::INVALID),
            Some((sign, mag, inexact)) => {
                let limit = if sign { 1u128 << 31 } else { (1u128 << 31) - 1 };
                if mag > limit {
                    return (i32::MIN, FpFlags::INVALID);
                }
                let val = if sign {
                    (mag as u32).wrapping_neg() as i32
                } else {
                    mag as i32
                };
                (
                    val,
                    if inexact {
                        FpFlags::INEXACT
                    } else {
                        FpFlags::NONE
                    },
                )
            }
        }
    }
    fn to_i64(&self, v: &BigFloat) -> (i64, FpFlags) {
        match v.to_integer_parts() {
            None => (i64::MIN, FpFlags::INVALID),
            Some((sign, mag, inexact)) => {
                let limit = if sign { 1u128 << 63 } else { (1u128 << 63) - 1 };
                if mag > limit {
                    return (i64::MIN, FpFlags::INVALID);
                }
                let val = if sign {
                    (mag as u64).wrapping_neg() as i64
                } else {
                    mag as i64
                };
                (
                    val,
                    if inexact {
                        FpFlags::INEXACT
                    } else {
                        FpFlags::NONE
                    },
                )
            }
        }
    }
    fn from_u64(&self, x: u64) -> (BigFloat, FpFlags) {
        if x == 0 {
            return (BigFloat::zero(false, self.prec), FpFlags::NONE);
        }
        let (v, inexact) = BigFloat::from_int(false, 0, &[x], false, self.prec, Round::NearestEven);
        (
            v,
            if inexact {
                FpFlags::INEXACT
            } else {
                FpFlags::NONE
            },
        )
    }
    fn to_u64(&self, v: &BigFloat) -> (u64, FpFlags) {
        match v.to_integer_parts() {
            None => (u64::MAX, FpFlags::INVALID),
            Some((sign, mag, inexact)) => {
                if (sign && mag != 0) || mag > u128::from(u64::MAX) {
                    return (u64::MAX, FpFlags::INVALID);
                }
                (
                    mag as u64,
                    if inexact {
                        FpFlags::INEXACT
                    } else {
                        FpFlags::NONE
                    },
                )
            }
        }
    }

    fn add(&self, a: &BigFloat, b: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::add(a, b, self.prec, rm)
    }
    fn sub(&self, a: &BigFloat, b: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::sub(a, b, self.prec, rm)
    }
    fn mul(&self, a: &BigFloat, b: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::mul(a, b, self.prec, rm)
    }
    fn div(&self, a: &BigFloat, b: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::div(a, b, self.prec, rm)
    }
    fn fma(&self, a: &BigFloat, b: &BigFloat, c: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::fma(a, b, c, self.prec, rm)
    }
    fn sqrt(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::sqrt(a, self.prec, rm)
    }
    fn min(&self, a: &BigFloat, b: &BigFloat) -> (BigFloat, FpFlags) {
        // x64 minsd semantics: NaN in either operand → second operand + IE.
        match a.partial_cmp_ieee(b) {
            None => (b.clone(), FpFlags::INVALID),
            Some(std::cmp::Ordering::Less) => (a.clone(), FpFlags::NONE),
            _ => (b.clone(), FpFlags::NONE),
        }
    }
    fn max(&self, a: &BigFloat, b: &BigFloat) -> (BigFloat, FpFlags) {
        match a.partial_cmp_ieee(b) {
            None => (b.clone(), FpFlags::INVALID),
            Some(std::cmp::Ordering::Greater) => (a.clone(), FpFlags::NONE),
            _ => (b.clone(), FpFlags::NONE),
        }
    }
    fn neg(&self, a: &BigFloat) -> (BigFloat, FpFlags) {
        (a.neg(), FpFlags::NONE)
    }
    fn abs(&self, a: &BigFloat) -> (BigFloat, FpFlags) {
        (a.abs(), FpFlags::NONE)
    }

    fn sin(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::sin(a, self.prec, rm)
    }
    fn cos(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::cos(a, self.prec, rm)
    }
    fn tan(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::tan(a, self.prec, rm)
    }
    fn asin(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::asin(a, self.prec, rm)
    }
    fn acos(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::acos(a, self.prec, rm)
    }
    fn atan(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::atan(a, self.prec, rm)
    }
    fn atan2(&self, y: &BigFloat, x: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::atan2(y, x, self.prec, rm)
    }
    fn exp(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::exp(a, self.prec, rm)
    }
    fn log(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::log(a, self.prec, rm)
    }
    fn log10(&self, a: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::log10(a, self.prec, rm)
    }
    fn pow(&self, a: &BigFloat, b: &BigFloat, rm: Round) -> (BigFloat, FpFlags) {
        bf::pow(a, b, self.prec, rm)
    }
    fn floor(&self, a: &BigFloat) -> (BigFloat, FpFlags) {
        bf::floor(a, self.prec)
    }
    fn ceil(&self, a: &BigFloat) -> (BigFloat, FpFlags) {
        bf::ceil(a, self.prec)
    }

    fn cmp_quiet(&self, a: &BigFloat, b: &BigFloat) -> (CmpResult, FpFlags) {
        bf::cmp_quiet(a, b)
    }
    fn cmp_signaling(&self, a: &BigFloat, b: &BigFloat) -> (CmpResult, FpFlags) {
        bf::cmp_signaling(a, b)
    }

    fn is_nan(&self, a: &BigFloat) -> bool {
        a.is_nan()
    }

    fn render(&self, v: &BigFloat) -> String {
        // Show the full shadow precision (≈ prec·log10(2) digits).
        let digits = (f64::from(self.prec) * std::f64::consts::LOG10_2).ceil() as usize;
        v.to_decimal(digits.max(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_at_53_matches_f64() {
        let ctx = BigFloatCtx::new(53);
        let rm = Round::NearestEven;
        let xs = [0.1, 0.2, 1.5, -3.0, 1e10];
        for &a in &xs {
            for &b in &xs {
                let va = ctx.from_f64(a);
                let vb = ctx.from_f64(b);
                let (s, _) = ctx.add(&va, &vb, rm);
                assert_eq!(ctx.to_f64(&s, rm).0.to_bits(), (a + b).to_bits());
                let (p, _) = ctx.mul(&va, &vb, rm);
                assert_eq!(ctx.to_f64(&p, rm).0.to_bits(), (a * b).to_bits());
            }
        }
    }

    #[test]
    fn i64_conversions() {
        let ctx = BigFloatCtx::new(200);
        let (v, f) = ctx.from_i64(i64::MAX);
        assert!(f.is_empty(), "200 bits hold any i64 exactly");
        let (back, f) = ctx.to_i64(&v);
        assert_eq!(back, i64::MAX);
        assert!(f.is_empty());
        let (v, _) = ctx.from_i64(-42);
        assert_eq!(ctx.to_i64(&v).0, -42);
        // Truncation.
        let h = ctx.from_f64(-2.75);
        let (t, f) = ctx.to_i64(&h);
        assert_eq!(t, -2);
        assert!(f.contains(FpFlags::INEXACT));
        // Narrow context rounds large integers.
        let narrow = BigFloatCtx::new(24);
        let (_, f) = narrow.from_i64((1 << 30) + 1);
        assert!(f.contains(FpFlags::INEXACT));
    }

    #[test]
    fn i32_conversions_single_rounding() {
        let ctx = BigFloatCtx::new(200);
        // 2^31 − 0.5 holds 32+1 significant bits — fine for f64, but the
        // point is the flags: truncate to i32::MAX with INEXACT, no
        // INVALID (the old via-f64 path used cvt semantics on a value
        // that had already been rounded).
        let (v, f) = ctx.sub(
            &ctx.from_f64(2147483648.0),
            &ctx.from_f64(0.5),
            Round::NearestEven,
        );
        assert!(f.is_empty());
        assert_eq!(ctx.to_i32(&v), (i32::MAX, FpFlags::INEXACT));
        // A 60-bit integer plus a fraction: exact at prec 200, far outside
        // f64's 53 bits. Must report out-of-range INVALID, and the
        // in-range wide case must truncate exactly.
        let (wide, f) = ctx.add(
            &ctx.from_i64(1 << 60).0,
            &ctx.from_f64(0.25),
            Round::NearestEven,
        );
        assert!(f.is_empty());
        assert_eq!(ctx.to_i32(&wide), (i32::MIN, FpFlags::INVALID));
        // i32::MIN itself is in range; one below is not.
        assert_eq!(
            ctx.to_i32(&ctx.from_f64(i32::MIN as f64)),
            (i32::MIN, FpFlags::NONE)
        );
        assert_eq!(
            ctx.to_i32(&ctx.from_f64(i32::MIN as f64 - 1.0)),
            (i32::MIN, FpFlags::INVALID)
        );
        assert_eq!(
            ctx.to_i32(&BigFloat::nan(200)),
            (i32::MIN, FpFlags::INVALID)
        );
    }

    #[test]
    fn min_max_semantics() {
        let ctx = BigFloatCtx::new(64);
        let a = ctx.from_f64(1.0);
        let b = ctx.from_f64(2.0);
        let nan = BigFloat::nan(64);
        assert_eq!(ctx.to_f64(&ctx.min(&a, &b).0, Round::NearestEven).0, 1.0);
        assert_eq!(ctx.to_f64(&ctx.max(&a, &b).0, Round::NearestEven).0, 2.0);
        let (r, f) = ctx.min(&nan, &b);
        assert_eq!(ctx.to_f64(&r, Round::NearestEven).0, 2.0);
        assert!(f.contains(FpFlags::INVALID));
        let (r, f) = ctx.min(&a, &nan);
        assert!(r.is_nan());
        assert!(f.contains(FpFlags::INVALID));
    }

    #[test]
    fn render_full_precision() {
        let ctx = BigFloatCtx::new(200);
        let third = ctx
            .div(&ctx.from_f64(1.0), &ctx.from_f64(3.0), Round::NearestEven)
            .0;
        let s = ctx.render(&third);
        assert!(s.starts_with("3.3333333333333333333333333"), "{s}");
    }
}
