//! Limb-level integer primitives for [`super::BigFloat`] mantissas.
//!
//! Mantissas are little-endian slices of `u64` limbs. Everything here is
//! plain integer arithmetic; the floating-point semantics (exponents,
//! rounding, flags) live in the parent module.
//!
//! Multiplication is schoolbook `O(n²)` with a Karatsuba layer above a
//! threshold; division is Knuth's Algorithm D. These give the same
//! asymptotic profile as MPFR's basecase paths, which is what the Fig. 11
//! precision-scaling experiment measures.

use std::cmp::Ordering;

/// Limbs per Karatsuba recursion threshold (empirically reasonable; also an
/// ablation knob for the bench suite).
pub const KARATSUBA_THRESHOLD: usize = 32;

/// Compare two little-endian limb slices as integers (lengths may differ).
pub fn cmp(a: &[u64], b: &[u64]) -> Ordering {
    let n = a.len().max(b.len());
    for i in (0..n).rev() {
        let ai = a.get(i).copied().unwrap_or(0);
        let bi = b.get(i).copied().unwrap_or(0);
        match ai.cmp(&bi) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `a += b` (in place, little-endian); returns the final carry.
pub fn add_assign(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert!(a.len() >= b.len());
    let mut carry = false;
    for i in 0..b.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(u64::from(carry));
        a[i] = s2;
        carry = c1 || c2;
    }
    let mut i = b.len();
    while carry && i < a.len() {
        let (s, c) = a[i].overflowing_add(1);
        a[i] = s;
        carry = c;
        i += 1;
    }
    carry
}

/// `a -= b` (in place); requires `a >= b`. Returns the final borrow, which
/// is always false when the precondition holds.
pub fn sub_assign(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert!(a.len() >= b.len());
    let mut borrow = false;
    for i in 0..b.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
        a[i] = d2;
        borrow = b1 || b2;
    }
    let mut i = b.len();
    while borrow && i < a.len() {
        let (d, bo) = a[i].overflowing_sub(1);
        a[i] = d;
        borrow = bo;
        i += 1;
    }
    borrow
}

/// Shift left by `bits < 64` in place; returns the bits shifted out of the
/// top limb.
pub fn shl_small(a: &mut [u64], bits: u32) -> u64 {
    debug_assert!(bits < 64);
    if bits == 0 {
        return 0;
    }
    let mut carry = 0u64;
    for limb in a.iter_mut() {
        let new_carry = *limb >> (64 - bits);
        *limb = (*limb << bits) | carry;
        carry = new_carry;
    }
    carry
}

/// Shift right by `bits < 64` in place; returns the bits shifted out of the
/// bottom limb (left-aligned in the returned u64).
pub fn shr_small(a: &mut [u64], bits: u32) -> u64 {
    debug_assert!(bits < 64);
    if bits == 0 {
        return 0;
    }
    let mut carry = 0u64;
    for limb in a.iter_mut().rev() {
        let new_carry = *limb << (64 - bits);
        *limb = (*limb >> bits) | carry;
        carry = new_carry;
    }
    carry
}

/// Number of leading zero bits of the slice viewed as an integer with
/// `a.len() * 64` bits. Returns the full width for zero.
pub fn leading_zeros(a: &[u64]) -> u32 {
    for (i, &limb) in a.iter().enumerate().rev() {
        if limb != 0 {
            return (a.len() - 1 - i) as u32 * 64 + limb.leading_zeros();
        }
    }
    a.len() as u32 * 64
}

/// True if all limbs are zero.
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&x| x == 0)
}

/// Schoolbook multiplication: `out = a * b`. `out` must have length
/// `a.len() + b.len()` and be zeroed by the caller.
fn mul_schoolbook(out: &mut [u64], a: &[u64], b: &[u64]) {
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = u128::from(ai) * u128::from(bj) + u128::from(out[i + j]) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u128::from(out[k]) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
}

/// Full multiplication: returns `a * b` as a fresh `a.len() + b.len()` limb
/// vector. Dispatches to Karatsuba above [`KARATSUBA_THRESHOLD`].
pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        mul_schoolbook(&mut out, a, b);
    } else {
        mul_karatsuba(&mut out, a, b);
    }
    out
}

/// Schoolbook-only multiplication (ablation entry point for the bench
/// suite's Karatsuba-vs-schoolbook comparison).
pub fn mul_basecase(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    mul_schoolbook(&mut out, a, b);
    out
}

/// Karatsuba multiplication into `out` (length `a.len() + b.len()`, zeroed).
fn mul_karatsuba(out: &mut [u64], a: &[u64], b: &[u64]) {
    let n = a.len().min(b.len());
    if n < KARATSUBA_THRESHOLD {
        mul_schoolbook(out, a, b);
        return;
    }
    let half = n / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);
    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)*(b0+b1) - z0 - z2
    let z0 = mul(a0, b0);
    let z2 = mul(a1, b1);
    let mut sa = vec![0u64; a1.len().max(a0.len()) + 1];
    sa[..a0.len()].copy_from_slice(a0);
    add_assign(&mut sa, a1);
    let mut sb = vec![0u64; b1.len().max(b0.len()) + 1];
    sb[..b0.len()].copy_from_slice(b0);
    add_assign(&mut sb, b1);
    let mut z1 = mul(&sa, &sb);
    // z1 -= z0 + z2 (never underflows).
    sub_assign(&mut z1, &z0);
    sub_assign(&mut z1, &z2);
    // out = z0 + (z1 << 64*half) + (z2 << 64*2*half)
    out[..z0.len()].copy_from_slice(&z0);
    let carry = add_assign(&mut out[half..], &z1);
    debug_assert!(!carry);
    let carry = add_assign(&mut out[2 * half..], &z2);
    debug_assert!(!carry);
}

/// Knuth Algorithm D: divide the `m + n` limb integer `num` by the `n` limb
/// integer `den` (with `den`'s top limb's MSB set — normalized). Returns
/// `(quotient, remainder)` with `num = quotient * den + remainder` and
/// `remainder < den`.
pub fn divrem(num: &[u64], den: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = den.len();
    assert!(n > 0 && den[n - 1] >> 63 == 1, "divisor must be normalized");
    if cmp(num, den) == Ordering::Less {
        return (vec![0], num.to_vec());
    }
    if n == 1 {
        return divrem_by_limb(num, den[0]);
    }
    let m = num.len().saturating_sub(n);
    // Working copy of the numerator with one extra high limb.
    let mut u = num.to_vec();
    u.push(0);
    let mut q = vec![0u64; m + 1];
    let d1 = den[n - 1];
    let d0 = den[n - 2];
    for j in (0..=m).rev() {
        // Estimate q̂ from the top three numerator limbs and top two divisor
        // limbs.
        let hi = (u128::from(u[j + n]) << 64) | u128::from(u[j + n - 1]);
        let mut qhat = hi / u128::from(d1);
        let mut rhat = hi % u128::from(d1);
        if qhat > u128::from(u64::MAX) {
            qhat = u128::from(u64::MAX);
            rhat = hi - qhat * u128::from(d1);
        }
        while rhat <= u128::from(u64::MAX)
            && qhat * u128::from(d0) > (rhat << 64 | u128::from(u[j + n - 2]))
        {
            qhat -= 1;
            rhat += u128::from(d1);
        }
        // Multiply-subtract: u[j..j+n+1] -= qhat * den.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * u128::from(den[i]) + carry;
            carry = p >> 64;
            let t = i128::from(u[j + i]) - i128::from(p as u64) - borrow;
            u[j + i] = t as u64;
            borrow = i64::from(t < 0) as i128;
        }
        let t = i128::from(u[j + n]) - i128::from(carry as u64) - borrow;
        u[j + n] = t as u64;
        if t < 0 {
            // q̂ was one too large: add back.
            qhat -= 1;
            let mut c = false;
            for i in 0..n {
                let (s1, c1) = u[j + i].overflowing_add(den[i]);
                let (s2, c2) = s1.overflowing_add(u64::from(c));
                u[j + i] = s2;
                c = c1 || c2;
            }
            u[j + n] = u[j + n].wrapping_add(u64::from(c));
        }
        q[j] = qhat as u64;
    }
    u.truncate(n);
    (q, u)
}

/// Divide by a single (normalized) limb.
fn divrem_by_limb(num: &[u64], d: u64) -> (Vec<u64>, Vec<u64>) {
    let mut q = vec![0u64; num.len()];
    let mut rem = 0u128;
    for i in (0..num.len()).rev() {
        let cur = (rem << 64) | u128::from(num[i]);
        q[i] = (cur / u128::from(d)) as u64;
        rem = cur % u128::from(d);
    }
    (q, vec![rem as u64])
}

/// Integer square root with remainder: returns `(s, r)` with `s² + r = a`
/// and `s² ≤ a < (s+1)²`. Newton's method with an f64 seed.
pub fn isqrt(a: &[u64]) -> (Vec<u64>, Vec<u64>) {
    if is_zero(a) {
        return (vec![0], vec![0]);
    }
    let bits = a.len() as u64 * 64 - u64::from(leading_zeros(a));
    // Initial overestimate: 2^ceil(bits/2).
    let sbits = bits.div_ceil(2) + 1;
    let slimbs = (sbits as usize).div_ceil(64);
    let mut x = vec![0u64; slimbs];
    x[((sbits - 1) / 64) as usize] = 1u64 << ((sbits - 1) % 64);
    // Newton: x' = (x + a/x) / 2, monotonically decreasing from above.
    loop {
        // a / x, with x normalized for Knuth D.
        let xt = trim(&x);
        let shift = leading_zeros(&xt) % 64;
        let mut xn = xt.clone();
        let mut an = a.to_vec();
        if shift != 0 {
            let c = shl_small(&mut xn, shift);
            debug_assert_eq!(c, 0);
            an.push(0);
            let c = shl_small(&mut an, shift);
            debug_assert_eq!(c, 0);
        }
        let (quot, _) = divrem(&an, &xn);
        let quot = trim(&quot);
        // next = (x + quot) / 2
        let mut next = vec![0u64; x.len().max(quot.len()) + 1];
        next[..x.len()].copy_from_slice(&x);
        add_assign(&mut next, &quot);
        shr_small(&mut next, 1);
        let next = trim(&next);
        if cmp(&next, &x) != Ordering::Less {
            break;
        }
        x = next;
    }
    // r = a - x².
    let sq = mul(&x, &x);
    let mut r = a.to_vec();
    if r.len() < sq.len() {
        r.resize(sq.len(), 0);
    }
    let borrow = sub_assign(&mut r, &sq);
    debug_assert!(!borrow, "isqrt overshoot");
    (x, trim(&r))
}

/// Strip high zero limbs (keeping at least one limb).
pub fn trim(a: &[u64]) -> Vec<u64> {
    let mut end = a.len();
    while end > 1 && a[end - 1] == 0 {
        end -= 1;
    }
    a[..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let mut a = vec![u64::MAX, u64::MAX, 0];
        let b = vec![1];
        assert!(!add_assign(&mut a, &b));
        assert_eq!(a, vec![0, 0, 1]);
        assert!(!sub_assign(&mut a, &b));
        assert_eq!(a, vec![u64::MAX, u64::MAX, 0]);
    }

    #[test]
    fn add_carry_out() {
        let mut a = vec![u64::MAX];
        assert!(add_assign(&mut a, &[1]));
        assert_eq!(a, vec![0]);
    }

    #[test]
    fn shifts() {
        let mut a = vec![0x8000_0000_0000_0000, 1];
        let out = shl_small(&mut a, 1);
        assert_eq!(out, 0);
        assert_eq!(a, vec![0, 3]);
        let out = shr_small(&mut a, 1);
        assert_eq!(out, 0, "bottom limb was even — nothing shifted out");
        assert_eq!(a, vec![0x8000_0000_0000_0000, 1]);
        // Odd bottom limb loses its low bit on a right shift.
        let mut b = vec![3u64, 0];
        let out = shr_small(&mut b, 1);
        assert_eq!(out, 0x8000_0000_0000_0000);
        assert_eq!(b, vec![1, 0]);
    }

    #[test]
    fn lz() {
        assert_eq!(leading_zeros(&[0, 0]), 128);
        assert_eq!(leading_zeros(&[1, 0]), 127);
        assert_eq!(leading_zeros(&[0, 1]), 63);
        assert_eq!(leading_zeros(&[0, 1 << 63]), 0);
    }

    #[test]
    fn mul_small() {
        assert_eq!(mul(&[3], &[5]), vec![15, 0]);
        assert_eq!(mul(&[u64::MAX], &[u64::MAX]), vec![1, u64::MAX - 1]);
        // (2^64 + 1) * (2^64 + 1) = 2^128 + 2^65 + 1
        assert_eq!(mul(&[1, 1], &[1, 1]), vec![1, 2, 1, 0]);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Deterministic pseudo-random limbs, sizes straddling the threshold.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [
            KARATSUBA_THRESHOLD - 1,
            KARATSUBA_THRESHOLD,
            KARATSUBA_THRESHOLD * 2 + 3,
            KARATSUBA_THRESHOLD * 4,
        ] {
            let a: Vec<u64> = (0..n).map(|_| next()).collect();
            let b: Vec<u64> = (0..n + 7).map(|_| next()).collect();
            assert_eq!(mul(&a, &b), mul_basecase(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn divrem_reconstructs() {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for nd in [1usize, 2, 3, 5] {
            for nn in [nd, nd + 1, nd + 4] {
                let mut den: Vec<u64> = (0..nd).map(|_| next()).collect();
                den[nd - 1] |= 1 << 63; // normalize
                let num: Vec<u64> = (0..nn).map(|_| next()).collect();
                let (q, r) = divrem(&num, &den);
                assert_eq!(cmp(&r, &den), Ordering::Less);
                // q*den + r == num
                let mut recon = mul(&q, &den);
                recon.resize(recon.len().max(r.len()) + 1, 0);
                add_assign(&mut recon, &r);
                assert_eq!(cmp(&recon, &num), Ordering::Equal);
            }
        }
    }

    #[test]
    fn isqrt_exact_and_inexact() {
        let (s, r) = isqrt(&[144]);
        assert_eq!(s, vec![12]);
        assert!(is_zero(&r));
        let (s, r) = isqrt(&[145]);
        assert_eq!(s, vec![12]);
        assert_eq!(r, vec![1]);
        // Large: (2^100)² = 2^200.
        let mut a = vec![0u64; 4];
        a[3] = 1 << (200 - 192);
        let (s, r) = isqrt(&a);
        let mut expect = vec![0u64; 2];
        expect[1] = 1 << (100 - 64);
        assert_eq!(trim(&s), expect);
        assert!(is_zero(&r));
    }
}
