//! Randomized tests for the arithmetic substrate: softfp vs. host
//! hardware, BigFloat at 53 bits vs. `f64`, posit encode/decode
//! invariants. Driven by a deterministic SplitMix64 generator (the build
//! environment has no proptest).

use fpvm_arith::bigfloat::{self, BigFloat};
use fpvm_arith::posit::{Posit16, Posit32, Posit64};
use fpvm_arith::softfp;
use fpvm_arith::{ArithSystem, BigFloatCtx, CmpResult, FpFlags, Round, Vanilla};

/// SplitMix64: tiny, deterministic, well-distributed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Interesting finite f64s: mixture of uniform bit patterns (often
    /// huge/tiny) and ordinary magnitudes.
    fn finite(&mut self) -> f64 {
        match self.next() % 3 {
            0 => loop {
                let x = f64::from_bits(self.next());
                if x.is_finite() {
                    break x;
                }
            },
            1 => self.range(-1e6, 1e6),
            _ => {
                let e = (self.next() % 120) as i32 - 60;
                self.range(-1.0, 1.0) * 2f64.powi(e)
            }
        }
    }
}

const CASES: usize = 512;

/// softfp value channel is bit-identical to host IEEE arithmetic.
#[test]
fn softfp_values_match_host() {
    let mut rng = Rng(0x501);
    for _ in 0..CASES {
        let (a, b) = (rng.finite(), rng.finite());
        assert_eq!(softfp::add(a, b).0.to_bits(), (a + b).to_bits());
        assert_eq!(softfp::sub(a, b).0.to_bits(), (a - b).to_bits());
        assert_eq!(softfp::mul(a, b).0.to_bits(), (a * b).to_bits());
        if b != 0.0 {
            assert_eq!(softfp::div(a, b).0.to_bits(), (a / b).to_bits());
        }
        if a >= 0.0 {
            assert_eq!(softfp::sqrt(a).0.to_bits(), a.sqrt().to_bits());
        }
    }
}

/// softfp inexact flag is consistent: if no flags are raised, the result
/// must be the exact real-number result — verified via BigFloat at high
/// precision.
#[test]
fn softfp_exactness_verified_by_bigfloat() {
    let mut rng = Rng(0x502);
    let rm = Round::NearestEven;
    for _ in 0..128 {
        let (a, b) = (rng.finite(), rng.finite());
        let big = |x: f64| BigFloat::from_f64(x, 400, rm).0;
        for (op, host) in [
            (
                bigfloat::add(&big(a), &big(b), 400, rm).0,
                softfp::add(a, b),
            ),
            (
                bigfloat::mul(&big(a), &big(b), 400, rm).0,
                softfp::mul(a, b),
            ),
        ] {
            let (value, flags) = host;
            let exact_in_400 = op.to_f64(rm).0;
            if !flags.intersects(FpFlags::INEXACT | FpFlags::OVERFLOW | FpFlags::UNDERFLOW) {
                // Claimed exact: the 400-bit result demotes to the same bits.
                assert_eq!(
                    value.to_bits(),
                    exact_in_400.to_bits(),
                    "claimed exact but differs from 400-bit result ({a}, {b})"
                );
            }
        }
    }
}

/// BigFloat at 53-bit precision reproduces f64 arithmetic bit-for-bit,
/// including the inexact flag.
#[test]
fn bigfloat53_is_f64() {
    let mut rng = Rng(0x503);
    let rm = Round::NearestEven;
    for _ in 0..CASES {
        let (a, b) = (rng.finite(), rng.finite());
        let big = |x: f64| BigFloat::from_f64(x, 53, rm).0;
        let checks: [(BigFloat, FpFlags, (f64, FpFlags)); 4] = [
            {
                let (v, f) = bigfloat::add(&big(a), &big(b), 53, rm);
                (v, f, softfp::add(a, b))
            },
            {
                let (v, f) = bigfloat::sub(&big(a), &big(b), 53, rm);
                (v, f, softfp::sub(a, b))
            },
            {
                let (v, f) = bigfloat::mul(&big(a), &big(b), 53, rm);
                (v, f, softfp::mul(a, b))
            },
            {
                let (v, f) = bigfloat::div(&big(a), &big(b), 53, rm);
                (v, f, softfp::div(a, b))
            },
        ];
        for (i, (v, f, (hv, hf))) in checks.into_iter().enumerate() {
            let (d, df) = v.to_f64(rm);
            // BigFloat has unbounded exponent: overflow/underflow appear at
            // demotion time rather than operation time. Compare the final
            // value and the union of flags.
            if hv.is_nan() {
                assert!(d.is_nan(), "op {i}: expected NaN, got {d}");
            } else if !hf.intersects(FpFlags::OVERFLOW | FpFlags::UNDERFLOW) {
                assert_eq!(d.to_bits(), hv.to_bits(), "op {i} on ({a}, {b})");
                let combined = FpFlags(f.0 | df.0);
                assert_eq!(
                    combined.contains(FpFlags::INEXACT),
                    hf.contains(FpFlags::INEXACT),
                    "op {i} inexact mismatch on ({a}, {b}): bf={combined} host={hf}"
                );
            } else {
                // Over/underflowed in f64: demoted BigFloat must agree.
                assert_eq!(d.to_bits(), hv.to_bits(), "op {i} saturation");
            }
        }
    }
}

/// BigFloat sqrt at 53 bits matches f64.
#[test]
fn bigfloat53_sqrt() {
    let mut rng = Rng(0x504);
    let rm = Round::NearestEven;
    for _ in 0..CASES {
        let a = rng.range(0.0, 1e300);
        let v = BigFloat::from_f64(a, 53, rm).0;
        let (s, _) = bigfloat::sqrt(&v, 53, rm);
        assert_eq!(s.to_f64(rm).0.to_bits(), a.sqrt().to_bits());
    }
}

/// BigFloat comparison agrees with f64 comparison.
#[test]
fn bigfloat_cmp_matches() {
    let mut rng = Rng(0x505);
    let rm = Round::NearestEven;
    for _ in 0..CASES {
        let (a, b) = (rng.finite(), rng.finite());
        let (va, vb) = (
            BigFloat::from_f64(a, 53, rm).0,
            BigFloat::from_f64(b, 53, rm).0,
        );
        let expect = if a < b {
            CmpResult::Less
        } else if a > b {
            CmpResult::Greater
        } else {
            CmpResult::Equal
        };
        assert_eq!(bigfloat::cmp_quiet(&va, &vb).0, expect);
    }
}

/// Round-trip: f64 -> BigFloat(>=53 bits) -> f64 is the identity.
#[test]
fn bigfloat_roundtrip() {
    let mut rng = Rng(0x506);
    let rm = Round::NearestEven;
    for _ in 0..CASES {
        let a = rng.finite();
        let extra = (rng.next() % 500) as u32;
        let v = BigFloat::from_f64(a, 53 + extra, rm).0;
        assert_eq!(v.to_f64(rm).0.to_bits(), a.to_bits());
    }
}

/// Posit bit patterns round-trip through decode/encode via arithmetic
/// identity: p + 0 = p, p * 1 = p.
#[test]
fn posit_identities() {
    let mut rng = Rng(0x507);
    for _ in 0..CASES {
        let bits = rng.next();
        macro_rules! check {
            ($t:ty) => {{
                let p = <$t>::from_bits(bits);
                let zero = <$t>::ZERO;
                let one = <$t>::from_f64(1.0);
                let (s, f) = p.add_p(zero);
                assert_eq!(s.bits(), p.bits(), "p+0");
                assert!(f.is_empty());
                let (m, f) = p.mul_p(one);
                assert_eq!(m.bits(), p.bits(), "p*1");
                assert!(f.is_empty());
                // x - x = 0 (exact) unless NaR.
                let (d, _) = p.sub_p(p);
                if p.is_nar() {
                    assert!(d.is_nar());
                } else {
                    assert!(d.is_zero());
                }
                // Division by self is exactly 1 unless zero/NaR.
                if !p.is_nar() && !p.is_zero() {
                    let (q, f) = p.div_p(p);
                    assert_eq!(q.bits(), one.bits(), "p/p");
                    assert!(f.is_empty());
                }
            }};
        }
        check!(Posit16);
        check!(Posit32);
        check!(Posit64);
    }
}

/// Posit f64 round trips: for any posit32 bit pattern, to_f64 → from_f64
/// recovers the same pattern (posit32 values are all exactly
/// representable in f64).
#[test]
fn posit32_f64_roundtrip() {
    let mut rng = Rng(0x508);
    for _ in 0..CASES {
        let bits = rng.next() & 0xFFFF_FFFF;
        let p = Posit32::from_bits(bits);
        let back = Posit32::from_f64(p.to_f64());
        assert_eq!(back.bits(), p.bits());
    }
}

/// Posit ordering matches f64 ordering of the decoded values.
#[test]
fn posit_order_matches_value_order() {
    let mut rng = Rng(0x509);
    for _ in 0..CASES {
        let pa = Posit32::from_bits(rng.next() & 0xFFFF_FFFF);
        let pb = Posit32::from_bits(rng.next() & 0xFFFF_FFFF);
        if !pa.is_nar() && !pb.is_nar() {
            let (fa, fb) = (pa.to_f64(), pb.to_f64());
            let expect = if fa < fb {
                CmpResult::Less
            } else if fa > fb {
                CmpResult::Greater
            } else {
                CmpResult::Equal
            };
            assert_eq!(pa.cmp_p(pb), expect);
        }
    }
}

/// Posit64 addition at moderate magnitudes is at least as accurate as
/// f64 (posit64 has ≥ 53 fraction bits near 1.0).
#[test]
fn posit64_matches_f64_near_one() {
    let mut rng = Rng(0x50A);
    for _ in 0..CASES {
        let a = rng.range(0.5, 2.0);
        let b = rng.range(0.5, 2.0);
        let pa = Posit64::from_f64(a);
        let pb = Posit64::from_f64(b);
        let (s, _) = pa.add_p(pb);
        let err = (s.to_f64() - (a + b)).abs();
        assert!(err <= (a + b).abs() * 1e-15, "err = {err}");
    }
}

/// Vanilla through the ArithSystem interface is bit-identical to host.
#[test]
fn vanilla_interface_identity() {
    let mut rng = Rng(0x50B);
    let v = Vanilla;
    let rm = Round::NearestEven;
    for _ in 0..CASES {
        let (a, b) = (rng.finite(), rng.finite());
        assert_eq!(v.add(&a, &b, rm).0.to_bits(), (a + b).to_bits());
        assert_eq!(v.mul(&a, &b, rm).0.to_bits(), (a * b).to_bits());
        assert_eq!(v.neg(&a).0.to_bits(), (-a).to_bits());
        assert_eq!(v.abs(&a).0.to_bits(), a.abs().to_bits());
    }
}

/// BigFloatCtx promote/demote through the ArithSystem interface is exact
/// at ≥ 53 bits.
#[test]
fn ctx_promote_demote() {
    let mut rng = Rng(0x50C);
    let ctx = BigFloatCtx::new(200);
    for _ in 0..CASES {
        let a = rng.finite();
        let v = ctx.from_f64(a);
        let (d, f) = ctx.to_f64(&v, Round::NearestEven);
        assert_eq!(d.to_bits(), a.to_bits());
        assert!(f.is_empty());
    }
}

/// Integer conversions: from_i64 → to_i64 is the identity at 200 bits.
#[test]
fn ctx_i64_roundtrip() {
    let mut rng = Rng(0x50D);
    let ctx = BigFloatCtx::new(200);
    for _ in 0..CASES {
        let x = rng.next() as i64;
        let (v, f) = ctx.from_i64(x);
        assert!(f.is_empty());
        let (back, f) = ctx.to_i64(&v);
        assert_eq!(back, x);
        assert!(f.is_empty());
    }
}
