//! Exhaustive and identity tests: posit8 over its entire value space, and
//! BigFloat transcendental identities at high precision.

use fpvm_arith::bigfloat::{self, BigFloat};
use fpvm_arith::posit::Posit8;
use fpvm_arith::{CmpResult, FpFlags, Round};

/// All 256 posit8 bit patterns.
fn all_posit8() -> impl Iterator<Item = Posit8> {
    (0u64..256).map(Posit8::from_bits)
}

#[test]
fn posit8_roundtrip_exhaustive() {
    // Every posit8 value is exactly representable in f64 and must
    // round-trip through it.
    for p in all_posit8() {
        let back = Posit8::from_f64(p.to_f64());
        assert_eq!(back.bits(), p.bits(), "roundtrip of {:#04x}", p.bits());
    }
}

#[test]
fn posit8_negation_exhaustive() {
    // Negation is exact two's complement; double negation is identity, and
    // to_f64 commutes with negation.
    for p in all_posit8() {
        assert_eq!(p.negate().negate().bits(), p.bits());
        if !p.is_nar() {
            assert_eq!(p.negate().to_f64(), -p.to_f64());
        }
    }
}

#[test]
fn posit8_add_exhaustive_against_exact() {
    // posit8 values are dyadic rationals with few bits: the exact real sum
    // is representable in f64, so the correctly-rounded posit8 sum is
    // `from_f64(exact)` — compare all 65,536 pairs.
    for a in all_posit8() {
        for b in all_posit8() {
            let (s, _) = a.add_p(b);
            if a.is_nar() || b.is_nar() {
                assert!(s.is_nar());
                continue;
            }
            let exact = a.to_f64() + b.to_f64(); // exact: dyadics, small exps
            let expect = Posit8::from_f64(exact);
            assert_eq!(
                s.bits(),
                expect.bits(),
                "{:#04x} + {:#04x}: {} + {} = {}",
                a.bits(),
                b.bits(),
                a.to_f64(),
                b.to_f64(),
                exact
            );
        }
    }
}

#[test]
fn posit8_mul_exhaustive_against_exact() {
    for a in all_posit8() {
        for b in all_posit8() {
            let (s, _) = a.mul_p(b);
            if a.is_nar() || b.is_nar() {
                assert!(s.is_nar());
                continue;
            }
            let exact = a.to_f64() * b.to_f64(); // exact in f64 (≤ 12 bits)
            let expect = Posit8::from_f64(exact);
            assert_eq!(
                s.bits(),
                expect.bits(),
                "{:#04x} * {:#04x}: {} * {} = {}",
                a.bits(),
                b.bits(),
                a.to_f64(),
                b.to_f64(),
                exact
            );
        }
    }
}

#[test]
fn posit8_ordering_exhaustive() {
    // Two's-complement integer order == value order, for all pairs.
    for a in all_posit8() {
        for b in all_posit8() {
            if a.is_nar() || b.is_nar() {
                continue;
            }
            let (fa, fb) = (a.to_f64(), b.to_f64());
            let expect = if fa < fb {
                CmpResult::Less
            } else if fa > fb {
                CmpResult::Greater
            } else {
                CmpResult::Equal
            };
            assert_eq!(a.cmp_p(b), expect);
        }
    }
}

// ---------------------------------------------------------------------------
// BigFloat transcendental identities at 300 bits
// ---------------------------------------------------------------------------

const P: u32 = 300;
const RM: Round = Round::NearestEven;

fn bf(x: f64) -> BigFloat {
    BigFloat::from_f64(x, P, RM).0
}

/// |a - b| < 2^-bits (relative to scale ~1).
fn close(a: &BigFloat, b: &BigFloat, bits: i64, what: &str) {
    let (d, _) = bigfloat::sub(a, b, P, RM);
    if !d.is_zero() {
        assert!(
            d.exp() < -bits,
            "{what}: difference exp {} (want < -{bits})",
            d.exp()
        );
    }
}

#[test]
fn sin2_plus_cos2_is_one() {
    for x in [0.3, 1.0, 2.5, -4.2, 10.0, 100.5] {
        let v = bf(x);
        let (s, _) = bigfloat::sin(&v, P, RM);
        let (c, _) = bigfloat::cos(&v, P, RM);
        let (s2, _) = bigfloat::mul(&s, &s, P, RM);
        let (c2, _) = bigfloat::mul(&c, &c, P, RM);
        let (sum, _) = bigfloat::add(&s2, &c2, P, RM);
        close(&sum, &bf(1.0), 280, &format!("sin²+cos² at {x}"));
    }
}

#[test]
fn exp_log_inverse() {
    for x in [0.5, 1.0, 3.25, 17.0, 0.001] {
        let v = bf(x);
        let (l, _) = bigfloat::log(&v, P, RM);
        let (e, _) = bigfloat::exp(&l, P, RM);
        close(
            &e,
            &v,
            280 - v.exp().abs().max(1),
            &format!("exp(log({x}))"),
        );
    }
}

#[test]
fn tan_is_sin_over_cos() {
    for x in [0.4, 1.2, -0.9] {
        let v = bf(x);
        let (t, _) = bigfloat::tan(&v, P, RM);
        let (s, _) = bigfloat::sin(&v, P, RM);
        let (c, _) = bigfloat::cos(&v, P, RM);
        let (q, _) = bigfloat::div(&s, &c, P, RM);
        close(&t, &q, 280, &format!("tan({x})"));
    }
}

#[test]
fn asin_sin_inverse_on_principal_range() {
    for x in [0.1, 0.5, 0.9, -0.7] {
        let v = bf(x);
        let (a, _) = bigfloat::asin(&v, P, RM);
        let (s, _) = bigfloat::sin(&a, P, RM);
        close(&s, &v, 280, &format!("sin(asin({x}))"));
    }
}

#[test]
fn atan2_matches_atan_in_quadrant_one() {
    for (y, x) in [(1.0, 2.0), (0.3, 0.4), (5.0, 1.0)] {
        let (r1, _) = bigfloat::atan2(&bf(y), &bf(x), P, RM);
        let (q, _) = bigfloat::div(&bf(y), &bf(x), P, RM);
        let (r2, _) = bigfloat::atan(&q, P, RM);
        close(&r1, &r2, 280, &format!("atan2({y},{x})"));
    }
}

#[test]
fn pow_integer_agrees_with_repeated_multiplication() {
    let x = bf(1.7);
    let (p5, _) = bigfloat::pow(&x, &bf(5.0), P, RM);
    let mut acc = bf(1.0);
    for _ in 0..5 {
        acc = bigfloat::mul(&acc, &x, P, RM).0;
    }
    close(&p5, &acc, 290, "1.7^5");
}

#[test]
fn sqrt_squares_back() {
    for x in [2.0, 10.0, 12345.6789, 1e-12] {
        let v = bf(x);
        let (s, _) = bigfloat::sqrt(&v, P, RM);
        let (sq, _) = bigfloat::mul(&s, &s, P, RM);
        close(&sq, &v, 290 - v.exp().abs().max(1), &format!("sqrt({x})²"));
    }
}

#[test]
fn flags_survive_identities() {
    // Exact cases stay exact through the interface.
    let (_, f) = bigfloat::mul(&bf(2.0), &bf(4.0), P, RM);
    assert_eq!(f, FpFlags::NONE);
    let (_, f) = bigfloat::sqrt(&bf(16.0), P, RM);
    assert_eq!(f, FpFlags::NONE);
}
