//! Property tests for the machine substrate: encoder/decoder round-trips
//! over random instruction streams, executor determinism, and MXCSR
//! trap/mask semantics under random FP inputs.

use fpvm_machine::*;
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(Gpr)
}
fn xmm() -> impl Strategy<Value = Xmm> {
    (0u8..16).prop_map(Xmm)
}
fn mem() -> impl Strategy<Value = Mem> {
    (
        proptest::option::of(gpr()),
        proptest::option::of(gpr()),
        prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        -100_000i64..100_000,
    )
        .prop_map(|(base, index, scale, disp)| Mem {
            base,
            index,
            scale,
            disp,
        })
}
fn xm() -> impl Strategy<Value = XM> {
    prop_oneof![xmm().prop_map(XM::Reg), mem().prop_map(XM::Mem)]
}
fn rm() -> impl Strategy<Value = RM> {
    prop_oneof![gpr().prop_map(RM::Reg), mem().prop_map(RM::Mem)]
}
fn width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (xm(), xm()).prop_map(|(dst, src)| Inst::MovSd { dst, src }),
        (xm(), xm()).prop_map(|(dst, src)| Inst::MovApd { dst, src }),
        (xmm(), xm()).prop_map(|(dst, src)| Inst::AddSd { dst, src }),
        (xmm(), xm()).prop_map(|(dst, src)| Inst::SubSd { dst, src }),
        (xmm(), xm()).prop_map(|(dst, src)| Inst::MulSd { dst, src }),
        (xmm(), xm()).prop_map(|(dst, src)| Inst::DivSd { dst, src }),
        (xmm(), xm()).prop_map(|(dst, src)| Inst::SqrtSd { dst, src }),
        (xmm(), xm()).prop_map(|(dst, src)| Inst::AddPd { dst, src }),
        (xmm(), xm()).prop_map(|(a, b)| Inst::UComISd { a, b }),
        (xmm(), rm(), width()).prop_map(|(dst, src, w)| Inst::CvtSi2Sd { dst, src, w }),
        (gpr(), xm(), width()).prop_map(|(dst, src, w)| Inst::CvtTSd2Si { dst, src, w }),
        (xmm(), xm()).prop_map(|(dst, src)| Inst::XorPd { dst, src }),
        (gpr(), xmm()).prop_map(|(dst, src)| Inst::MovQXG { dst, src }),
        (gpr(), gpr()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (gpr(), any::<i64>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (gpr(), mem(), width()).prop_map(|(dst, addr, w)| Inst::Load { dst, addr, w }),
        (mem(), gpr(), width()).prop_map(|(addr, src, w)| Inst::Store { addr, src, w }),
        (gpr(), mem()).prop_map(|(dst, addr)| Inst::Lea { dst, addr }),
        any::<i32>().prop_map(|rel| Inst::Jmp { rel }),
        any::<i32>().prop_map(|rel| Inst::Call { rel }),
        Just(Inst::Ret),
        Just(Inst::Halt),
        Just(Inst::Nop),
        (gpr()).prop_map(|src| Inst::Push { src }),
        any::<u16>().prop_map(|id| Inst::Trap {
            kind: TrapKind::Correctness,
            id
        }),
    ]
}

proptest! {
    /// Every instruction round-trips through the byte encoding, alone and
    /// in a concatenated stream.
    #[test]
    fn encode_decode_roundtrip(insts in proptest::collection::vec(inst(), 1..40)) {
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for i in &insts {
            offsets.push(buf.len());
            encode(i, &mut buf);
        }
        let mut pos = 0;
        for (k, i) in insts.iter().enumerate() {
            prop_assert_eq!(pos, offsets[k]);
            let (d, len) = decode(&buf, pos).expect("decode");
            prop_assert_eq!(&d, i);
            pos += len;
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// The executor is deterministic: two runs of the same program produce
    /// identical final state.
    #[test]
    fn executor_deterministic(vals in proptest::collection::vec(-1e6..1e6f64, 4)) {
        let mut a = Asm::new();
        let mut mems = Vec::new();
        for v in &vals {
            mems.push(a.f64m(*v));
        }
        a.movsd(Xmm(0), mems[0]);
        a.addsd(Xmm(0), mems[1]);
        a.mulsd(Xmm(0), mems[2]);
        a.divsd(Xmm(0), mems[3]);
        a.halt();
        let p = a.finish();
        let run = || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&p);
            m.hook_ext = false;
            m.mxcsr.mask_all();
            let ev = m.run(1000);
            (ev, m.xmm[0][0], m.cycles, m.icount)
        };
        prop_assert_eq!(run(), run());
    }

    /// MXCSR contract: with everything masked, FP programs never fault and
    /// results equal host arithmetic; with everything unmasked, a fault
    /// occurs iff the op is inexact/special, and the faulting instruction
    /// does not retire.
    #[test]
    fn mxcsr_contract(a in -1e10..1e10f64, b in -1e10..1e10f64) {
        let mut asmb = Asm::new();
        let ca = asmb.f64m(a);
        let cb = asmb.f64m(b);
        asmb.movsd(Xmm(0), ca);
        asmb.mulsd(Xmm(0), cb);
        asmb.halt();
        let p = asmb.finish();
        // Masked run.
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.hook_ext = false;
        m.mxcsr.mask_all();
        prop_assert_eq!(m.run(100), Event::Halted);
        prop_assert_eq!(f64::from_bits(m.xmm[0][0]).to_bits(), (a * b).to_bits());
        // Unmasked run.
        let mut m2 = Machine::new(CostModel::r815());
        m2.load_program(&p);
        m2.hook_ext = false;
        m2.mxcsr.unmask_all();
        let (_, exact_flags) = fpvm_arith::softfp::mul(a, b);
        match m2.run(100) {
            Event::Halted => prop_assert!(
                exact_flags.is_empty(),
                "halted but op had flags {exact_flags}"
            ),
            Event::FpException { rip, flags } => {
                prop_assert!(!exact_flags.is_empty());
                prop_assert_eq!(flags, exact_flags);
                // Not retired: xmm0 still holds a.
                prop_assert_eq!(m2.xmm[0][0], a.to_bits());
                // rip points at the mulsd.
                let (inst, _) = fpvm_machine::decode(
                    m2.mem.code_bytes(),
                    (rip - CODE_BASE) as usize,
                )
                .unwrap();
                let is_mul = matches!(inst, Inst::MulSd { .. });
                prop_assert!(is_mul, "rip did not point at mulsd");
            }
            other => prop_assert!(false, "unexpected event {:?}", other),
        }
    }
}
