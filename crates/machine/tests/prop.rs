//! Randomized tests for the machine substrate: encoder/decoder
//! round-trips over random instruction streams, executor determinism, and
//! MXCSR trap/mask semantics under random FP inputs. Driven by a
//! deterministic SplitMix64 generator (the build environment has no
//! proptest).

use fpvm_machine::*;

/// SplitMix64: tiny, deterministic, well-distributed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next() >> 11) as f64 / (1u64 << 53) as f64)
    }

    fn gpr(&mut self) -> Gpr {
        Gpr(self.below(16) as u8)
    }

    fn xmm(&mut self) -> Xmm {
        Xmm(self.below(16) as u8)
    }

    fn mem(&mut self) -> Mem {
        Mem {
            base: if self.below(2) == 0 {
                Some(self.gpr())
            } else {
                None
            },
            index: if self.below(2) == 0 {
                Some(self.gpr())
            } else {
                None
            },
            scale: [1u8, 2, 4, 8][self.below(4) as usize],
            disp: self.below(200_001) as i64 - 100_000,
        }
    }

    fn xm(&mut self) -> XM {
        if self.below(2) == 0 {
            XM::Reg(self.xmm())
        } else {
            XM::Mem(self.mem())
        }
    }

    fn rm(&mut self) -> RM {
        if self.below(2) == 0 {
            RM::Reg(self.gpr())
        } else {
            RM::Mem(self.mem())
        }
    }

    fn width(&mut self) -> Width {
        [Width::W8, Width::W16, Width::W32, Width::W64][self.below(4) as usize]
    }

    fn inst(&mut self) -> Inst {
        match self.below(25) {
            0 => Inst::MovSd {
                dst: self.xm(),
                src: self.xm(),
            },
            1 => Inst::MovApd {
                dst: self.xm(),
                src: self.xm(),
            },
            2 => Inst::AddSd {
                dst: self.xmm(),
                src: self.xm(),
            },
            3 => Inst::SubSd {
                dst: self.xmm(),
                src: self.xm(),
            },
            4 => Inst::MulSd {
                dst: self.xmm(),
                src: self.xm(),
            },
            5 => Inst::DivSd {
                dst: self.xmm(),
                src: self.xm(),
            },
            6 => Inst::SqrtSd {
                dst: self.xmm(),
                src: self.xm(),
            },
            7 => Inst::AddPd {
                dst: self.xmm(),
                src: self.xm(),
            },
            8 => Inst::UComISd {
                a: self.xmm(),
                b: self.xm(),
            },
            9 => Inst::CvtSi2Sd {
                dst: self.xmm(),
                src: self.rm(),
                w: self.width(),
            },
            10 => Inst::CvtTSd2Si {
                dst: self.gpr(),
                src: self.xm(),
                w: self.width(),
            },
            11 => Inst::XorPd {
                dst: self.xmm(),
                src: self.xm(),
            },
            12 => Inst::MovQXG {
                dst: self.gpr(),
                src: self.xmm(),
            },
            13 => Inst::MovRR {
                dst: self.gpr(),
                src: self.gpr(),
            },
            14 => Inst::MovRI {
                dst: self.gpr(),
                imm: self.next() as i64,
            },
            15 => Inst::Load {
                dst: self.gpr(),
                addr: self.mem(),
                w: self.width(),
            },
            16 => Inst::Store {
                addr: self.mem(),
                src: self.gpr(),
                w: self.width(),
            },
            17 => Inst::Lea {
                dst: self.gpr(),
                addr: self.mem(),
            },
            18 => Inst::Jmp {
                rel: self.next() as i32,
            },
            19 => Inst::Call {
                rel: self.next() as i32,
            },
            20 => Inst::Ret,
            21 => Inst::Halt,
            22 => Inst::Nop,
            23 => Inst::Push { src: self.gpr() },
            _ => Inst::Trap {
                kind: TrapKind::Correctness,
                id: self.next() as u16,
            },
        }
    }
}

/// Every instruction round-trips through the byte encoding, alone and
/// in a concatenated stream.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng(0xA01);
    for _ in 0..256 {
        let n = 1 + rng.below(39) as usize;
        let insts: Vec<Inst> = (0..n).map(|_| rng.inst()).collect();
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for i in &insts {
            offsets.push(buf.len());
            encode(i, &mut buf);
        }
        let mut pos = 0;
        for (k, i) in insts.iter().enumerate() {
            assert_eq!(pos, offsets[k]);
            let (d, len) = decode(&buf, pos).expect("decode");
            assert_eq!(&d, i);
            pos += len;
        }
        assert_eq!(pos, buf.len());
    }
}

/// The executor is deterministic: two runs of the same program produce
/// identical final state.
#[test]
fn executor_deterministic() {
    let mut rng = Rng(0xA02);
    for _ in 0..64 {
        let vals: Vec<f64> = (0..4).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let mut a = Asm::new();
        let mut mems = Vec::new();
        for v in &vals {
            mems.push(a.f64m(*v));
        }
        a.movsd(Xmm(0), mems[0]);
        a.addsd(Xmm(0), mems[1]);
        a.mulsd(Xmm(0), mems[2]);
        a.divsd(Xmm(0), mems[3]);
        a.halt();
        let p = a.finish();
        let run = || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&p);
            m.hook_ext = false;
            m.mxcsr.mask_all();
            let ev = m.run(1000);
            (ev, m.xmm[0][0], m.cycles, m.icount)
        };
        assert_eq!(run(), run());
    }
}

/// MXCSR contract: with everything masked, FP programs never fault and
/// results equal host arithmetic; with everything unmasked, a fault
/// occurs iff the op is inexact/special, and the faulting instruction
/// does not retire.
#[test]
fn mxcsr_contract() {
    let mut rng = Rng(0xA03);
    for _ in 0..256 {
        let a = rng.range_f64(-1e10, 1e10);
        let b = rng.range_f64(-1e10, 1e10);
        let mut asmb = Asm::new();
        let ca = asmb.f64m(a);
        let cb = asmb.f64m(b);
        asmb.movsd(Xmm(0), ca);
        asmb.mulsd(Xmm(0), cb);
        asmb.halt();
        let p = asmb.finish();
        // Masked run.
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.hook_ext = false;
        m.mxcsr.mask_all();
        assert_eq!(m.run(100), Event::Halted);
        assert_eq!(f64::from_bits(m.xmm[0][0]).to_bits(), (a * b).to_bits());
        // Unmasked run.
        let mut m2 = Machine::new(CostModel::r815());
        m2.load_program(&p);
        m2.hook_ext = false;
        m2.mxcsr.unmask_all();
        let (_, exact_flags) = fpvm_arith::softfp::mul(a, b);
        match m2.run(100) {
            Event::Halted => {
                assert!(
                    exact_flags.is_empty(),
                    "halted but op had flags {exact_flags}"
                )
            }
            Event::FpException { rip, flags } => {
                assert!(!exact_flags.is_empty());
                assert_eq!(flags, exact_flags);
                // Not retired: xmm0 still holds a.
                assert_eq!(m2.xmm[0][0], a.to_bits());
                // rip points at the mulsd.
                let (inst, _) =
                    fpvm_machine::decode(m2.mem.code_bytes(), (rip - CODE_BASE) as usize).unwrap();
                assert!(
                    matches!(inst, Inst::MulSd { .. }),
                    "rip did not point at mulsd"
                );
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
