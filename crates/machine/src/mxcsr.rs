//! `%mxcsr` and `%rflags` state.
//!
//! `%mxcsr` follows the x64 layout: sticky exception flags in bits 0–5,
//! exception *mask* bits in bits 7–12 (mask set = exception suppressed,
//! IEEE-default result written), rounding control in bits 13–14. "Unlike
//! integer condition codes, these flags are sticky, meaning they must be
//! manually cleared by software. FPVM manages these flags so that they
//! start at zero for each instruction." (§4.1)

use fpvm_arith::{FpFlags, Round};

/// The SSE control/status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mxcsr(pub u32);

impl Default for Mxcsr {
    /// Power-on default: all exceptions masked (0x1F80), round-to-nearest.
    fn default() -> Self {
        Mxcsr(0x1F80)
    }
}

impl Mxcsr {
    /// Sticky exception flags (bits 0–5) as [`FpFlags`].
    pub fn flags(self) -> FpFlags {
        FpFlags((self.0 & 0x3F) as u8)
    }

    /// Set sticky flags (OR semantics, like hardware).
    pub fn raise(&mut self, f: FpFlags) {
        self.0 |= u32::from(f.0);
    }

    /// Clear all sticky exception flags (what FPVM does per instruction).
    pub fn clear_flags(&mut self) {
        self.0 &= !0x3F;
    }

    /// Exception masks (bits 7–12) as [`FpFlags`] (bit set = masked).
    pub fn masks(self) -> FpFlags {
        FpFlags(((self.0 >> 7) & 0x3F) as u8)
    }

    /// Set the exception masks.
    pub fn set_masks(&mut self, m: FpFlags) {
        self.0 = (self.0 & !(0x3F << 7)) | (u32::from(m.0) << 7);
    }

    /// Mask everything (native execution — never faults).
    pub fn mask_all(&mut self) {
        self.set_masks(FpFlags::ALL);
    }

    /// Unmask everything (FPVM trap-and-emulate mode: every rounding,
    /// overflow, underflow, denormal and NaN event faults).
    pub fn unmask_all(&mut self) {
        self.set_masks(FpFlags::NONE);
    }

    /// Exceptions in `f` that are unmasked (would fault).
    pub fn unmasked(self, f: FpFlags) -> FpFlags {
        FpFlags(f.0 & !self.masks().0)
    }

    /// Rounding mode from the RC field (bits 13–14).
    pub fn rounding(self) -> Round {
        Round::from_rc(((self.0 >> 13) & 3) as u8)
    }

    /// Set the RC field.
    pub fn set_rounding(&mut self, r: Round) {
        self.0 = (self.0 & !(3 << 13)) | (u32::from(r.to_rc()) << 13);
    }
}

/// The subset of `%rflags` the ISA uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RFlags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
    /// Parity flag (set by `ucomisd`/`comisd` for unordered).
    pub pf: bool,
}

impl RFlags {
    /// Flag state after `ucomisd`/`comisd` (the three-flag encoding).
    pub fn set_fp_compare(&mut self, r: fpvm_arith::CmpResult) {
        use fpvm_arith::CmpResult::*;
        let (zf, pf, cf) = match r {
            Less => (false, false, true),
            Equal => (true, false, false),
            Greater => (false, false, false),
            Unordered => (true, true, true),
        };
        self.zf = zf;
        self.pf = pf;
        self.cf = cf;
        self.of = false;
        self.sf = false;
    }

    /// Flag state after an integer compare `a - b`.
    pub fn set_int_compare(&mut self, a: u64, b: u64) {
        let (res, borrow) = a.overflowing_sub(b);
        self.zf = res == 0;
        self.sf = (res as i64) < 0;
        self.cf = borrow;
        self.of = ((a ^ b) & (a ^ res)) >> 63 == 1;
        self.pf = (res as u8).count_ones().is_multiple_of(2);
    }

    /// Flag state after `test` (bitwise AND).
    pub fn set_logic(&mut self, res: u64) {
        self.zf = res == 0;
        self.sf = (res as i64) < 0;
        self.cf = false;
        self.of = false;
        self.pf = (res as u8).count_ones().is_multiple_of(2);
    }

    /// Evaluate a branch condition.
    pub fn cond(&self, c: crate::isa::Cond) -> bool {
        use crate::isa::Cond::*;
        match c {
            E => self.zf,
            Ne => !self.zf,
            L => self.sf != self.of,
            Le => self.zf || self.sf != self.of,
            G => !self.zf && self.sf == self.of,
            Ge => self.sf == self.of,
            B => self.cf,
            Be => self.cf || self.zf,
            A => !self.cf && !self.zf,
            Ae => !self.cf,
            P => self.pf,
            Np => !self.pf,
            S => self.sf,
            Ns => !self.sf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cond;
    use fpvm_arith::CmpResult;

    #[test]
    fn mxcsr_default_masked() {
        let m = Mxcsr::default();
        assert_eq!(m.masks(), FpFlags::ALL);
        assert_eq!(m.flags(), FpFlags::NONE);
        assert_eq!(m.rounding(), Round::NearestEven);
        assert_eq!(m.unmasked(FpFlags::ALL), FpFlags::NONE);
    }

    #[test]
    fn mxcsr_unmask_and_raise() {
        let mut m = Mxcsr::default();
        m.unmask_all();
        assert_eq!(m.unmasked(FpFlags::INEXACT), FpFlags::INEXACT);
        m.raise(FpFlags::INEXACT | FpFlags::OVERFLOW);
        assert_eq!(m.flags(), FpFlags::INEXACT | FpFlags::OVERFLOW);
        m.clear_flags();
        assert_eq!(m.flags(), FpFlags::NONE);
        // Selective masks.
        m.set_masks(FpFlags::INEXACT); // only PE masked
        assert_eq!(m.unmasked(FpFlags::INEXACT), FpFlags::NONE);
        assert_eq!(m.unmasked(FpFlags::INVALID), FpFlags::INVALID);
    }

    #[test]
    fn rounding_field() {
        let mut m = Mxcsr::default();
        for r in [Round::NearestEven, Round::Down, Round::Up, Round::Zero] {
            m.set_rounding(r);
            assert_eq!(m.rounding(), r);
            assert_eq!(m.masks(), FpFlags::ALL, "masks must be preserved");
        }
    }

    #[test]
    fn fp_compare_flags_and_conditions() {
        let mut f = RFlags::default();
        f.set_fp_compare(CmpResult::Less);
        assert!(f.cond(Cond::B) && !f.cond(Cond::A) && !f.cond(Cond::E) && !f.cond(Cond::P));
        f.set_fp_compare(CmpResult::Greater);
        assert!(f.cond(Cond::A) && !f.cond(Cond::B) && !f.cond(Cond::E));
        f.set_fp_compare(CmpResult::Equal);
        assert!(f.cond(Cond::E) && !f.cond(Cond::B) && !f.cond(Cond::A));
        f.set_fp_compare(CmpResult::Unordered);
        assert!(f.cond(Cond::P) && f.cond(Cond::E) && f.cond(Cond::B) && f.cond(Cond::Be));
    }

    #[test]
    fn int_compare_flags() {
        let mut f = RFlags::default();
        f.set_int_compare(5, 5);
        assert!(f.cond(Cond::E) && f.cond(Cond::Ge) && f.cond(Cond::Le));
        f.set_int_compare(3, 5);
        assert!(f.cond(Cond::L) && f.cond(Cond::B) && f.cond(Cond::Ne));
        f.set_int_compare(5, 3);
        assert!(f.cond(Cond::G) && f.cond(Cond::A));
        // Signed vs unsigned: -1 vs 1.
        f.set_int_compare(u64::MAX, 1);
        assert!(f.cond(Cond::L), "-1 < 1 signed");
        assert!(f.cond(Cond::A), "0xFFFF… > 1 unsigned");
    }
}
