//! Binary encoding of the simulated ISA.
//!
//! Instructions are variable length (1–18 bytes), like real x64: an opcode
//! byte followed by operand bytes. This is what makes the decode stage (and
//! FPVM's decode cache, §4.1/§5.3) real work rather than an array index, and
//! what gives the binary patcher the same "patch must fit the original
//! instruction" problem that e9patch solves on x64 (§3.2, §4.2). The
//! shortest patchable instruction (`movq r64, xmm`) is 3 bytes — exactly the
//! size of an encoded `Trap`, so any FP-relevant site can be patched in
//! place (with `Nop` padding for longer originals).

use crate::isa::*;

/// Upper bound on the encoded length of any instruction, in bytes (the
/// longest shapes are the two-memory-operand moves: opcode + two fully
/// general memory operands). Cache invalidation sweeps rewind by this
/// much: an instruction *starting* up to `MAX_INST_LEN - 1` bytes before
/// a patched range can span into it. Pinned against the encoder by test.
pub const MAX_INST_LEN: usize = 18;

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte at the given offset.
    BadOpcode(u8),
    /// The instruction ran off the end of the buffer.
    Truncated,
}

mod op {
    pub const MOVSD: u8 = 0x01;
    pub const MOVAPD: u8 = 0x02;
    pub const ADDSD: u8 = 0x03;
    pub const SUBSD: u8 = 0x04;
    pub const MULSD: u8 = 0x05;
    pub const DIVSD: u8 = 0x06;
    pub const MINSD: u8 = 0x07;
    pub const MAXSD: u8 = 0x08;
    pub const SQRTSD: u8 = 0x09;
    pub const FMASD: u8 = 0x0A;
    pub const ADDPD: u8 = 0x0B;
    pub const SUBPD: u8 = 0x0C;
    pub const MULPD: u8 = 0x0D;
    pub const DIVPD: u8 = 0x0E;
    pub const UCOMISD: u8 = 0x0F;
    pub const COMISD: u8 = 0x10;
    pub const CVTSI2SD: u8 = 0x11;
    pub const CVTTSD2SI: u8 = 0x12;
    pub const CVTSD2SS: u8 = 0x13;
    pub const CVTSS2SD: u8 = 0x14;
    pub const XORPD: u8 = 0x15;
    pub const ANDPD: u8 = 0x16;
    pub const ORPD: u8 = 0x17;
    pub const MOVQXG: u8 = 0x18;
    pub const MOVQGX: u8 = 0x19;
    pub const MOVRR: u8 = 0x20;
    pub const MOVRI: u8 = 0x21;
    pub const LOAD: u8 = 0x22;
    pub const STORE: u8 = 0x23;
    pub const LEA: u8 = 0x24;
    pub const ALURR: u8 = 0x25;
    pub const ALURI: u8 = 0x26;
    pub const DIVR: u8 = 0x27;
    pub const REMR: u8 = 0x28;
    pub const CMPRR: u8 = 0x29;
    pub const CMPRI: u8 = 0x2A;
    pub const TESTRR: u8 = 0x2B;
    pub const JMP: u8 = 0x30;
    pub const JCC: u8 = 0x31;
    pub const CALL: u8 = 0x32;
    pub const CALLEXT: u8 = 0x33;
    pub const RET: u8 = 0x34;
    pub const PUSH: u8 = 0x35;
    pub const POP: u8 = 0x36;
    pub const TRAP_CORRECTNESS: u8 = 0xF0;
    pub const TRAP_PATCH: u8 = 0xF1;
    pub const HALT: u8 = 0xFE;
    pub const NOP: u8 = 0x90;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_mem(out: &mut Vec<u8>, m: &Mem) {
    let mut flags = 0u8;
    if m.base.is_some() {
        flags |= 1;
    }
    if m.index.is_some() {
        flags |= 2;
    }
    flags |= (m.scale.trailing_zeros() as u8 & 3) << 2;
    out.push(flags);
    if let Some(b) = m.base {
        out.push(b.0);
    }
    if let Some(i) = m.index {
        out.push(i.0);
    }
    let d = i32::try_from(m.disp).expect("mem displacement must fit in i32");
    out.extend_from_slice(&d.to_le_bytes());
}

fn put_xm(out: &mut Vec<u8>, x: &XM) {
    match x {
        XM::Reg(r) => {
            out.push(0);
            out.push(r.0);
        }
        XM::Mem(m) => {
            out.push(1);
            put_mem(out, m);
        }
    }
}

fn put_rm(out: &mut Vec<u8>, x: &RM) {
    match x {
        RM::Reg(r) => {
            out.push(0);
            out.push(r.0);
        }
        RM::Mem(m) => {
            out.push(1);
            put_mem(out, m);
        }
    }
}

fn put_imm(out: &mut Vec<u8>, imm: i64) {
    if let Ok(v) = i8::try_from(imm) {
        out.push(0);
        out.push(v as u8);
    } else if let Ok(v) = i32::try_from(imm) {
        out.push(1);
        out.extend_from_slice(&v.to_le_bytes());
    } else {
        out.push(2);
        out.extend_from_slice(&imm.to_le_bytes());
    }
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
        Width::W64 => 3,
    }
}

fn cond_code(c: Cond) -> u8 {
    use Cond::*;
    match c {
        E => 0,
        Ne => 1,
        L => 2,
        Le => 3,
        G => 4,
        Ge => 5,
        B => 6,
        Be => 7,
        A => 8,
        Ae => 9,
        P => 10,
        Np => 11,
        S => 12,
        Ns => 13,
    }
}

fn alu_code(op: AluOp) -> u8 {
    use AluOp::*;
    match op {
        Add => 0,
        Sub => 1,
        And => 2,
        Or => 3,
        Xor => 4,
        Shl => 5,
        Shr => 6,
        Sar => 7,
        IMul => 8,
    }
}

fn ext_code(f: ExtFn) -> u8 {
    use ExtFn::*;
    match f {
        Sin => 0,
        Cos => 1,
        Tan => 2,
        Asin => 3,
        Acos => 4,
        Atan => 5,
        Atan2 => 6,
        Exp => 7,
        Log => 8,
        Log10 => 9,
        Pow => 10,
        Floor => 11,
        Ceil => 12,
        Fabs => 13,
        PrintF64 => 14,
        PrintI64 => 15,
        AllocHeap => 16,
        Exit => 17,
    }
}

/// Encode one instruction, appending to `out`. Returns the encoded length.
pub fn encode(inst: &Inst, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    use Inst::*;
    match inst {
        MovSd { dst, src } => {
            out.push(op::MOVSD);
            put_xm(out, dst);
            put_xm(out, src);
        }
        MovApd { dst, src } => {
            out.push(op::MOVAPD);
            put_xm(out, dst);
            put_xm(out, src);
        }
        AddSd { dst, src } => xmm_src(out, op::ADDSD, *dst, src),
        SubSd { dst, src } => xmm_src(out, op::SUBSD, *dst, src),
        MulSd { dst, src } => xmm_src(out, op::MULSD, *dst, src),
        DivSd { dst, src } => xmm_src(out, op::DIVSD, *dst, src),
        MinSd { dst, src } => xmm_src(out, op::MINSD, *dst, src),
        MaxSd { dst, src } => xmm_src(out, op::MAXSD, *dst, src),
        SqrtSd { dst, src } => xmm_src(out, op::SQRTSD, *dst, src),
        FmaSd { dst, a, b } => {
            out.push(op::FMASD);
            out.push(dst.0);
            out.push(a.0);
            put_xm(out, b);
        }
        AddPd { dst, src } => xmm_src(out, op::ADDPD, *dst, src),
        SubPd { dst, src } => xmm_src(out, op::SUBPD, *dst, src),
        MulPd { dst, src } => xmm_src(out, op::MULPD, *dst, src),
        DivPd { dst, src } => xmm_src(out, op::DIVPD, *dst, src),
        UComISd { a, b } => xmm_src(out, op::UCOMISD, *a, b),
        ComISd { a, b } => xmm_src(out, op::COMISD, *a, b),
        CvtSi2Sd { dst, src, w } => {
            out.push(op::CVTSI2SD);
            out.push(dst.0);
            out.push(width_code(*w));
            put_rm(out, src);
        }
        CvtTSd2Si { dst, src, w } => {
            out.push(op::CVTTSD2SI);
            out.push(dst.0);
            out.push(width_code(*w));
            put_xm(out, src);
        }
        CvtSd2Ss { dst, src } => xmm_src(out, op::CVTSD2SS, *dst, src),
        CvtSs2Sd { dst, src } => xmm_src(out, op::CVTSS2SD, *dst, src),
        XorPd { dst, src } => xmm_src(out, op::XORPD, *dst, src),
        AndPd { dst, src } => xmm_src(out, op::ANDPD, *dst, src),
        OrPd { dst, src } => xmm_src(out, op::ORPD, *dst, src),
        MovQXG { dst, src } => {
            out.push(op::MOVQXG);
            out.push(dst.0);
            out.push(src.0);
        }
        MovQGX { dst, src } => {
            out.push(op::MOVQGX);
            out.push(dst.0);
            out.push(src.0);
        }
        MovRR { dst, src } => {
            out.push(op::MOVRR);
            out.push(dst.0);
            out.push(src.0);
        }
        MovRI { dst, imm } => {
            out.push(op::MOVRI);
            out.push(dst.0);
            put_imm(out, *imm);
        }
        Load { dst, addr, w } => {
            out.push(op::LOAD);
            out.push(dst.0);
            out.push(width_code(*w));
            put_mem(out, addr);
        }
        Store { addr, src, w } => {
            out.push(op::STORE);
            out.push(src.0);
            out.push(width_code(*w));
            put_mem(out, addr);
        }
        Lea { dst, addr } => {
            out.push(op::LEA);
            out.push(dst.0);
            put_mem(out, addr);
        }
        AluRR { op: o, dst, src } => {
            out.push(op::ALURR);
            out.push(alu_code(*o));
            out.push(dst.0);
            out.push(src.0);
        }
        AluRI { op: o, dst, imm } => {
            out.push(op::ALURI);
            out.push(alu_code(*o));
            out.push(dst.0);
            put_imm(out, *imm);
        }
        DivR { dst, src } => {
            out.push(op::DIVR);
            out.push(dst.0);
            out.push(src.0);
        }
        RemR { dst, src } => {
            out.push(op::REMR);
            out.push(dst.0);
            out.push(src.0);
        }
        CmpRR { a, b } => {
            out.push(op::CMPRR);
            out.push(a.0);
            out.push(b.0);
        }
        CmpRI { a, imm } => {
            out.push(op::CMPRI);
            out.push(a.0);
            put_imm(out, *imm);
        }
        TestRR { a, b } => {
            out.push(op::TESTRR);
            out.push(a.0);
            out.push(b.0);
        }
        Jmp { rel } => {
            out.push(op::JMP);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Jcc { cond, rel } => {
            out.push(op::JCC);
            out.push(cond_code(*cond));
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Call { rel } => {
            out.push(op::CALL);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        CallExt { f } => {
            out.push(op::CALLEXT);
            out.push(ext_code(*f));
        }
        Ret => out.push(op::RET),
        Push { src } => {
            out.push(op::PUSH);
            out.push(src.0);
        }
        Pop { dst } => {
            out.push(op::POP);
            out.push(dst.0);
        }
        Trap { kind, id } => {
            out.push(match kind {
                TrapKind::Correctness => op::TRAP_CORRECTNESS,
                TrapKind::PatchCall => op::TRAP_PATCH,
            });
            out.extend_from_slice(&id.to_le_bytes());
        }
        Halt => out.push(op::HALT),
        Nop => out.push(op::NOP),
    }
    out.len() - start
}

fn xmm_src(out: &mut Vec<u8>, opcode: u8, dst: Xmm, src: &XM) {
    out.push(opcode);
    out.push(dst.0);
    put_xm(out, src);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
    fn i32(&mut self) -> Result<i32, DecodeError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(i32::from_le_bytes(s.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 8;
        Ok(i64::from_le_bytes(s.try_into().unwrap()))
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 2)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 2;
        Ok(u16::from_le_bytes(s.try_into().unwrap()))
    }
    fn gpr(&mut self) -> Result<Gpr, DecodeError> {
        Ok(Gpr(self.u8()? & 15))
    }
    fn xmm(&mut self) -> Result<Xmm, DecodeError> {
        Ok(Xmm(self.u8()? & 15))
    }
    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let flags = self.u8()?;
        let base = if flags & 1 != 0 {
            Some(self.gpr()?)
        } else {
            None
        };
        let index = if flags & 2 != 0 {
            Some(self.gpr()?)
        } else {
            None
        };
        let scale = 1u8 << ((flags >> 2) & 3);
        let disp = i64::from(self.i32()?);
        Ok(Mem {
            base,
            index,
            scale,
            disp,
        })
    }
    fn xm(&mut self) -> Result<XM, DecodeError> {
        match self.u8()? {
            0 => Ok(XM::Reg(self.xmm()?)),
            _ => Ok(XM::Mem(self.mem()?)),
        }
    }
    fn rm(&mut self) -> Result<RM, DecodeError> {
        match self.u8()? {
            0 => Ok(RM::Reg(self.gpr()?)),
            _ => Ok(RM::Mem(self.mem()?)),
        }
    }
    fn imm(&mut self) -> Result<i64, DecodeError> {
        match self.u8()? {
            0 => Ok(i64::from(self.u8()? as i8)),
            1 => Ok(i64::from(self.i32()?)),
            _ => self.i64(),
        }
    }
    fn width(&mut self) -> Result<Width, DecodeError> {
        Ok(match self.u8()? & 3 {
            0 => Width::W8,
            1 => Width::W16,
            2 => Width::W32,
            _ => Width::W64,
        })
    }
    fn cond(&mut self) -> Result<Cond, DecodeError> {
        use Cond::*;
        Ok(match self.u8()? {
            0 => E,
            1 => Ne,
            2 => L,
            3 => Le,
            4 => G,
            5 => Ge,
            6 => B,
            7 => Be,
            8 => A,
            9 => Ae,
            10 => P,
            11 => Np,
            12 => S,
            _ => Ns,
        })
    }
    fn alu(&mut self) -> Result<AluOp, DecodeError> {
        use AluOp::*;
        Ok(match self.u8()? {
            0 => Add,
            1 => Sub,
            2 => And,
            3 => Or,
            4 => Xor,
            5 => Shl,
            6 => Shr,
            7 => Sar,
            _ => IMul,
        })
    }
    fn ext(&mut self) -> Result<ExtFn, DecodeError> {
        use ExtFn::*;
        Ok(match self.u8()? {
            0 => Sin,
            1 => Cos,
            2 => Tan,
            3 => Asin,
            4 => Acos,
            5 => Atan,
            6 => Atan2,
            7 => Exp,
            8 => Log,
            9 => Log10,
            10 => Pow,
            11 => Floor,
            12 => Ceil,
            13 => Fabs,
            14 => PrintF64,
            15 => PrintI64,
            16 => AllocHeap,
            _ => Exit,
        })
    }
}

/// Decode one instruction from `buf` at `offset`. Returns the instruction
/// and its encoded length.
pub fn decode(buf: &[u8], offset: usize) -> Result<(Inst, usize), DecodeError> {
    let mut c = Cursor { buf, pos: offset };
    let opcode = c.u8()?;
    use Inst::*;
    let inst = match opcode {
        op::MOVSD => MovSd {
            dst: c.xm()?,
            src: c.xm()?,
        },
        op::MOVAPD => MovApd {
            dst: c.xm()?,
            src: c.xm()?,
        },
        op::ADDSD => AddSd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::SUBSD => SubSd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::MULSD => MulSd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::DIVSD => DivSd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::MINSD => MinSd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::MAXSD => MaxSd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::SQRTSD => SqrtSd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::FMASD => FmaSd {
            dst: c.xmm()?,
            a: c.xmm()?,
            b: c.xm()?,
        },
        op::ADDPD => AddPd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::SUBPD => SubPd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::MULPD => MulPd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::DIVPD => DivPd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::UCOMISD => UComISd {
            a: c.xmm()?,
            b: c.xm()?,
        },
        op::COMISD => ComISd {
            a: c.xmm()?,
            b: c.xm()?,
        },
        op::CVTSI2SD => {
            let dst = c.xmm()?;
            let w = c.width()?;
            CvtSi2Sd {
                dst,
                src: c.rm()?,
                w,
            }
        }
        op::CVTTSD2SI => {
            let dst = c.gpr()?;
            let w = c.width()?;
            CvtTSd2Si {
                dst,
                src: c.xm()?,
                w,
            }
        }
        op::CVTSD2SS => CvtSd2Ss {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::CVTSS2SD => CvtSs2Sd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::XORPD => XorPd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::ANDPD => AndPd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::ORPD => OrPd {
            dst: c.xmm()?,
            src: c.xm()?,
        },
        op::MOVQXG => MovQXG {
            dst: c.gpr()?,
            src: c.xmm()?,
        },
        op::MOVQGX => MovQGX {
            dst: c.xmm()?,
            src: c.gpr()?,
        },
        op::MOVRR => MovRR {
            dst: c.gpr()?,
            src: c.gpr()?,
        },
        op::MOVRI => MovRI {
            dst: c.gpr()?,
            imm: c.imm()?,
        },
        op::LOAD => {
            let dst = c.gpr()?;
            let w = c.width()?;
            Load {
                dst,
                addr: c.mem()?,
                w,
            }
        }
        op::STORE => {
            let src = c.gpr()?;
            let w = c.width()?;
            Store {
                addr: c.mem()?,
                src,
                w,
            }
        }
        op::LEA => Lea {
            dst: c.gpr()?,
            addr: c.mem()?,
        },
        op::ALURR => AluRR {
            op: c.alu()?,
            dst: c.gpr()?,
            src: c.gpr()?,
        },
        op::ALURI => AluRI {
            op: c.alu()?,
            dst: c.gpr()?,
            imm: c.imm()?,
        },
        op::DIVR => DivR {
            dst: c.gpr()?,
            src: c.gpr()?,
        },
        op::REMR => RemR {
            dst: c.gpr()?,
            src: c.gpr()?,
        },
        op::CMPRR => CmpRR {
            a: c.gpr()?,
            b: c.gpr()?,
        },
        op::CMPRI => CmpRI {
            a: c.gpr()?,
            imm: c.imm()?,
        },
        op::TESTRR => TestRR {
            a: c.gpr()?,
            b: c.gpr()?,
        },
        op::JMP => Jmp { rel: c.i32()? },
        op::JCC => Jcc {
            cond: c.cond()?,
            rel: c.i32()?,
        },
        op::CALL => Call { rel: c.i32()? },
        op::CALLEXT => CallExt { f: c.ext()? },
        op::RET => Ret,
        op::PUSH => Push { src: c.gpr()? },
        op::POP => Pop { dst: c.gpr()? },
        op::TRAP_CORRECTNESS => Trap {
            kind: TrapKind::Correctness,
            id: c.u16()?,
        },
        op::TRAP_PATCH => Trap {
            kind: TrapKind::PatchCall,
            id: c.u16()?,
        },
        op::HALT => Halt,
        op::NOP => Nop,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((inst, c.pos - offset))
}

/// Encoded length of an instruction without materializing the bytes.
pub fn encoded_len(inst: &Inst) -> usize {
    let mut v = Vec::with_capacity(20);
    encode(inst, &mut v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_insts() -> Vec<Inst> {
        use Inst::*;
        let m = Mem::bis(Gpr::RBP, Gpr::RCX, 8, -72);
        let m2 = Mem::abs(0x10_0040);
        vec![
            MovSd {
                dst: XM::Reg(Xmm(1)),
                src: XM::Mem(m),
            },
            MovSd {
                dst: XM::Mem(m2),
                src: XM::Reg(Xmm(0)),
            },
            MovApd {
                dst: XM::Reg(Xmm(3)),
                src: XM::Reg(Xmm(4)),
            },
            AddSd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1)),
            },
            SubSd {
                dst: Xmm(2),
                src: XM::Mem(m),
            },
            MulSd {
                dst: Xmm(5),
                src: XM::Reg(Xmm(6)),
            },
            DivSd {
                dst: Xmm(7),
                src: XM::Mem(m2),
            },
            MinSd {
                dst: Xmm(8),
                src: XM::Reg(Xmm(9)),
            },
            MaxSd {
                dst: Xmm(10),
                src: XM::Reg(Xmm(11)),
            },
            SqrtSd {
                dst: Xmm(12),
                src: XM::Reg(Xmm(13)),
            },
            FmaSd {
                dst: Xmm(0),
                a: Xmm(1),
                b: XM::Reg(Xmm(2)),
            },
            AddPd {
                dst: Xmm(1),
                src: XM::Mem(m),
            },
            SubPd {
                dst: Xmm(1),
                src: XM::Reg(Xmm(2)),
            },
            MulPd {
                dst: Xmm(1),
                src: XM::Reg(Xmm(2)),
            },
            DivPd {
                dst: Xmm(1),
                src: XM::Reg(Xmm(2)),
            },
            UComISd {
                a: Xmm(0),
                b: XM::Reg(Xmm(1)),
            },
            ComISd {
                a: Xmm(0),
                b: XM::Mem(m),
            },
            CvtSi2Sd {
                dst: Xmm(0),
                src: RM::Reg(Gpr::RDI),
                w: Width::W64,
            },
            CvtTSd2Si {
                dst: Gpr::RAX,
                src: XM::Reg(Xmm(0)),
                w: Width::W32,
            },
            CvtSd2Ss {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1)),
            },
            CvtSs2Sd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1)),
            },
            XorPd {
                dst: Xmm(0),
                src: XM::Mem(m2),
            },
            AndPd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1)),
            },
            OrPd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1)),
            },
            MovQXG {
                dst: Gpr::RAX,
                src: Xmm(0),
            },
            MovQGX {
                dst: Xmm(0),
                src: Gpr::RAX,
            },
            MovRR {
                dst: Gpr::RBX,
                src: Gpr::RCX,
            },
            MovRI {
                dst: Gpr::RAX,
                imm: 5,
            },
            MovRI {
                dst: Gpr::RAX,
                imm: 100_000,
            },
            MovRI {
                dst: Gpr::RAX,
                imm: i64::MIN,
            },
            Load {
                dst: Gpr::RAX,
                addr: m,
                w: Width::W64,
            },
            Store {
                addr: m,
                src: Gpr::RDX,
                w: Width::W32,
            },
            Lea {
                dst: Gpr::RSI,
                addr: m,
            },
            AluRR {
                op: AluOp::Add,
                dst: Gpr::RAX,
                src: Gpr::RBX,
            },
            AluRI {
                op: AluOp::Shl,
                dst: Gpr::RAX,
                imm: 3,
            },
            DivR {
                dst: Gpr::RAX,
                src: Gpr::RCX,
            },
            RemR {
                dst: Gpr::RAX,
                src: Gpr::RCX,
            },
            CmpRR {
                a: Gpr::RAX,
                b: Gpr::RBX,
            },
            CmpRI {
                a: Gpr::RAX,
                imm: -1,
            },
            TestRR {
                a: Gpr::RAX,
                b: Gpr::RAX,
            },
            Jmp { rel: -20 },
            Jcc {
                cond: Cond::L,
                rel: 44,
            },
            Call { rel: 1000 },
            CallExt { f: ExtFn::Sin },
            CallExt { f: ExtFn::PrintF64 },
            Ret,
            Push { src: Gpr::RBP },
            Pop { dst: Gpr::RBP },
            Trap {
                kind: TrapKind::Correctness,
                id: 42,
            },
            Trap {
                kind: TrapKind::PatchCall,
                id: 65535,
            },
            Halt,
            Nop,
        ]
    }

    #[test]
    fn roundtrip_every_instruction() {
        for inst in all_sample_insts() {
            let mut buf = Vec::new();
            let len = encode(&inst, &mut buf);
            assert_eq!(len, buf.len());
            let (decoded, dlen) = decode(&buf, 0).unwrap_or_else(|e| {
                panic!("decode failed for {inst:?}: {e:?}");
            });
            assert_eq!(decoded, inst);
            assert_eq!(dlen, len);
        }
    }

    #[test]
    fn roundtrip_stream() {
        // Decode a concatenated stream instruction by instruction.
        let insts = all_sample_insts();
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for i in &insts {
            offsets.push(buf.len());
            encode(i, &mut buf);
        }
        let mut pos = 0;
        for (i, &want_off) in insts.iter().zip(&offsets) {
            assert_eq!(pos, want_off);
            let (d, len) = decode(&buf, pos).unwrap();
            assert_eq!(&d, i);
            pos += len;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn trap_fits_shortest_patchable() {
        // A Trap must be patchable over the shortest FP-relevant
        // instruction (movq r64, xmm = 3 bytes).
        let movq = Inst::MovQXG {
            dst: Gpr::RAX,
            src: Xmm(0),
        };
        let trap = Inst::Trap {
            kind: TrapKind::Correctness,
            id: 7,
        };
        assert!(encoded_len(&trap) <= encoded_len(&movq));
        assert_eq!(encoded_len(&trap), 3);
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(&[0xCC], 0), Err(DecodeError::BadOpcode(0xCC)));
        assert_eq!(decode(&[op::ADDSD], 0), Err(DecodeError::Truncated));
        assert_eq!(decode(&[], 0), Err(DecodeError::Truncated));
    }

    #[test]
    fn max_inst_len_bounds_every_encoding() {
        for i in all_sample_insts() {
            assert!(
                encoded_len(&i) <= MAX_INST_LEN,
                "{i:?} encodes to {} bytes",
                encoded_len(&i)
            );
        }
        // The worst case nearly reaches the bound: a two-memory-operand
        // move with fully general addressing (base + index + scale +
        // 32-bit displacement) on both sides.
        let fat = Mem::bis(Gpr::RAX, Gpr::RCX, 8, i64::from(i32::MAX));
        let worst = Inst::MovSd {
            dst: XM::Mem(fat),
            src: XM::Mem(fat),
        };
        assert!(encoded_len(&worst) <= MAX_INST_LEN);
        assert!(
            encoded_len(&worst) >= MAX_INST_LEN - 1,
            "bound has drifted from the encoder; update MAX_INST_LEN"
        );
    }
}
