//! Superblock dispatch: batched execution of straight-line guest code.
//!
//! The stepped interpreter ([`Machine::step`]) pays fetch + predecode
//! lookup + cost-table lookup + taint branch + budget check + match
//! dispatch for *every* instruction. In a virtualized run almost none of
//! those instructions trap — FPVM's own observation (§5) is that the FP
//! sites are a small minority — so the dominant cost for trap-sparse
//! workloads is pure interpreter overhead. This module applies the classic
//! trace/superblock technique from binary translators (DynamoRIO trace
//! building, QEMU TB chaining): lazily form *superblocks* — runs of
//! pre-decoded instructions ending at control flow, a potentially-trapping
//! site, or a length cap — and dispatch whole blocks on the hot path.
//!
//! ## Formation rules
//!
//! Walking forward from a code offset, a block **ends before** any
//! instruction that traps into the runtime on essentially every execution
//! of a virtualized run, or that stops the run outright:
//!
//! * FP arithmetic ([`Inst::is_fp_arith`]) — faults under the engine's
//!   unmasked `%mxcsr`,
//! * `Trap` — correctness traps and patch calls,
//! * `CallExt` — hooked external calls,
//! * `Halt`.
//!
//! Control flow (`Jmp`/`Jcc`/`Call`/`Ret`) may sit at the *end* of a block:
//! it retires normally and redirects `rip`, after which dispatch re-enters
//! the cache at the new offset. Instructions that can fault *conditionally*
//! (memory operands, NaN-hole checks) sit anywhere in a block, because the
//! block executor runs every entry through the same `exec_inner` as
//! [`Machine::step`] — an event aborts the block with `rip`, `cycles`, and
//! `icount` exactly as the stepped loop would leave them. Blocks shorter
//! than two instructions are recorded as refusals (dispatching them would
//! cost as much as stepping).
//!
//! ## Accounting equivalence
//!
//! The superblock engine is a pure host-time optimization: `icount`,
//! `fp_icount`, `cycles`, guest output, and every surfaced [`Event`] are
//! bit-identical with superblocks on, off, or capped at any length. That
//! holds because the executor replays `step()`'s exact per-instruction
//! protocol (charge the pre-computed base cost, execute, count
//! retirement), block formation never *includes* an instruction it would
//! execute differently, and [`Machine::run`] only dispatches a block when
//! it fits the remaining instruction budget — otherwise it falls back to
//! single stepping so a `Fault::Budget` fires at the exact boundary.
//! Pinned by the tests below and by `crates/bench/tests/sblock_pin.rs`.
//!
//! ## Invalidation
//!
//! The cache is keyed by code offset and guarded by the same FNV-1a code
//! fingerprint discipline as the decode/emulate caches: a mismatch (new
//! program, recycled machine with different code) resets every slot.
//! [`Machine::patch_code`] invalidates surgically instead — any block
//! whose byte span overlaps the patched range is dropped (blocks start at
//! most `longest_block - 1` bytes before the patch), and re-forms
//! truncated at the patched site on next dispatch.

use crate::cost::CostModel;
use crate::encode::{decode, MAX_INST_LEN};
use crate::exec::{Event, ExecResult, Fault, Machine};
use crate::isa::Inst;
use crate::mem::CODE_BASE;

/// Default superblock formation cap (instructions per block).
pub const DEFAULT_BLOCK_CAP: u32 = 64;

/// Blocks shorter than this are refusals: dispatching a one-instruction
/// block costs as much as stepping it.
const MIN_BLOCK_LEN: usize = 2;

/// One pre-decoded instruction within a superblock, with everything the
/// per-instruction retire protocol needs snapshotted at formation time.
#[derive(Debug, Clone, Copy)]
struct BlockEntry {
    inst: Inst,
    /// Address of this instruction (`rip` while it executes).
    rip: u64,
    /// Address of the following instruction (fall-through `rip`).
    next: u64,
    /// Base cycle cost (`CostModel::inst_cost` at formation; the cache is
    /// keyed on the whole cost model, so this can never go stale).
    cost: u32,
    /// Counts toward `fp_icount` on retirement.
    fp: bool,
}

/// A superblock: a run of straight-line instructions plus precomputed
/// aggregates.
#[derive(Debug, Clone)]
struct Block {
    entries: Box<[BlockEntry]>,
    /// End of the block's byte span (code offset, exclusive). Formation
    /// reads only `[start, end)`, so patch invalidation tests overlap
    /// against this.
    end: u32,
    /// Summed base cycle cost of all entries.
    cost_sum: u64,
    /// How many entries count toward `fp_icount`.
    fp_count: u64,
}

/// One cache slot: not yet examined, examined-and-too-short, or a block.
#[derive(Debug, Clone, Default)]
enum Slot {
    #[default]
    Empty,
    Refused,
    Block(Block),
}

/// Host-side superblock cache counters (observability only — never part
/// of the deterministic accounting; they change with cap, budget shape,
/// and machine reuse).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Blocks formed.
    pub built: u64,
    /// Offsets examined that could not reach [`MIN_BLOCK_LEN`].
    pub refused: u64,
    /// Whole-block dispatches.
    pub dispatches: u64,
    /// Instructions retired through block dispatch.
    pub block_insts: u64,
    /// Base cycles charged by *fully completed* block dispatches (from the
    /// blocks' precomputed `cost_sum`).
    pub block_cycles: u64,
    /// FP-arith retirements through *fully completed* block dispatches.
    pub block_fp: u64,
    /// Slots dropped by patch invalidation.
    pub invalidated: u64,
}

/// The superblock cache: one slot per code offset, guarded by the code
/// fingerprint, the formation cap, and the cost model.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockCache {
    slots: Vec<Slot>,
    fingerprint: u64,
    cap: u32,
    /// Cost model the entries' costs were snapshotted under.
    cost: Option<CostModel>,
    /// Longest block byte span ever installed — bounds how far before a
    /// patch an overlapping block can start.
    longest: usize,
    stats: BlockCacheStats,
}

impl BlockCache {
    /// Validate the cache against the current code identity; reset every
    /// slot on any mismatch (different program, different cap, different
    /// cost model). O(1) when nothing changed.
    fn ensure(&mut self, code_len: usize, fingerprint: u64, cap: u32, cost: &CostModel) {
        let stale = self.slots.len() != code_len
            || self.fingerprint != fingerprint
            || self.cap != cap
            || self.cost.as_ref() != Some(cost);
        if stale {
            self.slots.clear();
            self.slots.resize(code_len, Slot::Empty);
            self.fingerprint = fingerprint;
            self.cap = cap;
            self.cost = Some(*cost);
            self.longest = 0;
        }
    }

    /// Surgical invalidation for a code patch at `[off, off + len)`: drop
    /// every block whose byte span overlaps the patched range, and every
    /// refusal whose verdict could have depended on patched bytes (a
    /// refusal is decided by one instruction, which spans at most
    /// [`MAX_INST_LEN`] bytes). Records the post-patch fingerprint so the
    /// surviving slots stay valid — only a *foreign* code change (one that
    /// bypassed [`Machine::patch_code`]) resets the whole cache.
    pub(crate) fn note_patch(&mut self, off: usize, len: usize, new_fingerprint: u64) {
        let reach = self.longest.max(MAX_INST_LEN).saturating_sub(1);
        let lo = off.saturating_sub(reach);
        let hi = (off + len).min(self.slots.len());
        for s in lo..hi {
            let kill = match &self.slots[s] {
                Slot::Empty => false,
                Slot::Refused => s + MAX_INST_LEN > off,
                Slot::Block(b) => (b.end as usize) > off,
            };
            if kill {
                self.stats.invalidated += 1;
                self.slots[s] = Slot::Empty;
            }
        }
        self.fingerprint = new_fingerprint;
    }
}

impl Machine {
    /// Configure superblock dispatch: enable/disable and set the formation
    /// cap (clamped to ≥ 1; a cap of 1 cannot reach the two-instruction
    /// formation minimum, so it degenerates to the stepped loop — the
    /// passthrough ablation). Changing the cap re-keys the cache; it never
    /// changes accounting.
    pub fn set_superblocks(&mut self, enabled: bool, cap: u32) {
        self.superblocks = enabled;
        self.sb_cap = cap.max(1);
    }

    /// Host-side superblock cache counters (see [`BlockCacheStats`]).
    pub fn superblock_stats(&self) -> BlockCacheStats {
        self.blocks.stats
    }

    /// The block-dispatching run loop. Called by [`Machine::run`] when
    /// superblocks are enabled and neither single-step nor the taint plane
    /// demands per-instruction fidelity.
    pub(crate) fn run_superblocks(&mut self, budget: u64) -> Event {
        // Take the cache out of `self` for the duration: the executor
        // needs `&mut self` while blocks are borrowed from the cache, and
        // nothing inside a run can touch `self.blocks` (patches only land
        // between `run()` calls).
        let mut cache = std::mem::take(&mut self.blocks);
        cache.ensure(
            self.mem.code_bytes().len(),
            self.mem.code_fingerprint(),
            self.sb_cap,
            &self.cost,
        );
        let ev = self.run_block_loop(&mut cache, budget);
        self.blocks = cache;
        ev
    }

    fn run_block_loop(&mut self, cache: &mut BlockCache, budget: u64) -> Event {
        let target = self.icount.saturating_add(budget);
        loop {
            if self.icount >= target {
                return Event::Fault(Fault::Budget);
            }
            let rip = self.rip;
            if rip < CODE_BASE || rip >= self.mem.code_end {
                // step() surfaces the BadRip fault with the exact stepped
                // shape (no cycles charged, rip unchanged).
                match self.step() {
                    Some(ev) => return ev,
                    None => continue,
                }
            }
            let off = (rip - CODE_BASE) as usize;
            if matches!(cache.slots[off], Slot::Empty) {
                let slot = self.build_block(off, cache.cap);
                match &slot {
                    Slot::Block(b) => {
                        cache.stats.built += 1;
                        cache.longest = cache.longest.max(b.end as usize - off);
                    }
                    Slot::Refused => cache.stats.refused += 1,
                    Slot::Empty => unreachable!("build_block returns Refused or Block"),
                }
                cache.slots[off] = slot;
            }
            match &cache.slots[off] {
                Slot::Block(b) if (b.entries.len() as u64) <= target - self.icount => {
                    cache.stats.dispatches += 1;
                    let (retired, ev) = self.exec_entries(&b.entries);
                    cache.stats.block_insts += retired as u64;
                    match ev {
                        Some(ev) => return ev,
                        None => {
                            // Fully retired: the precomputed aggregates
                            // describe exactly what was charged.
                            cache.stats.block_cycles += b.cost_sum;
                            cache.stats.block_fp += b.fp_count;
                        }
                    }
                }
                // Refused slot, or the block is longer than the remaining
                // budget: single-step so a Budget fault (or any event)
                // lands at exactly the same point as the stepped loop.
                _ => {
                    if let Some(ev) = self.step() {
                        return ev;
                    }
                }
            }
        }
    }

    /// Form a block starting at code offset `off` (or refuse).
    fn build_block(&self, off: usize, cap: u32) -> Slot {
        let code = self.mem.code_bytes();
        let mut entries: Vec<BlockEntry> = Vec::new();
        let mut cur = off;
        while entries.len() < cap as usize && cur < code.len() {
            let Ok((inst, len)) = decode(code, cur) else {
                break;
            };
            if ends_before(&inst) {
                break;
            }
            let rip = CODE_BASE + cur as u64;
            entries.push(BlockEntry {
                inst,
                rip,
                next: rip + len as u64,
                cost: self.cost.inst_cost(&inst) as u32,
                fp: inst.is_fp_arith(),
            });
            cur += len;
            if is_control_flow(&inst) {
                break;
            }
        }
        if entries.len() < MIN_BLOCK_LEN {
            return Slot::Refused;
        }
        let cost_sum = entries.iter().map(|e| u64::from(e.cost)).sum();
        let fp_count = entries.iter().filter(|e| e.fp).count() as u64;
        Slot::Block(Block {
            entries: entries.into_boxed_slice(),
            end: cur as u32,
            cost_sum,
            fp_count,
        })
    }

    /// Execute a block's entries back-to-back with the exact
    /// per-instruction protocol of [`Machine::step`]: charge the
    /// precomputed base cost, execute through `exec_inner`, count
    /// retirement. Any event returns immediately — at that point `rip`,
    /// `cycles`, `icount`, and `fp_icount` are bit-identical to what the
    /// stepped loop would have left. Returns (entries retired, event).
    fn exec_entries(&mut self, entries: &[BlockEntry]) -> (usize, Option<Event>) {
        for (i, e) in entries.iter().enumerate() {
            self.cycles += u64::from(e.cost);
            match self.exec_inner(&e.inst, e.rip, e.next) {
                ExecResult::Retired => {
                    self.icount += 1;
                    if e.fp {
                        self.fp_icount += 1;
                    }
                }
                ExecResult::Event(ev) => return (i, Some(ev)),
            }
        }
        (entries.len(), None)
    }
}

/// Instructions a superblock must end *before*: they trap into the runtime
/// on essentially every execution of a virtualized run, or stop the run.
fn ends_before(inst: &Inst) -> bool {
    inst.is_fp_arith() || matches!(inst, Inst::Halt | Inst::Trap { .. } | Inst::CallExt { .. })
}

/// Control flow may sit at the end of a block: it retires normally and
/// redirects `rip`.
fn is_control_flow(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. } | Inst::Ret
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::encode::encode;
    use crate::isa::{AluOp, Cond, Gpr, Mem, Xmm};

    /// A program with straight-line integer runs, a loop, a call/ret pair,
    /// and FP arithmetic — every block-formation rule gets exercised.
    fn mixed_program() -> crate::Program {
        let mut a = Asm::new();
        let c1 = a.f64m(1.5);
        let body = a.label();
        let done = a.label();
        let func = a.label();
        a.mov_ri(Gpr::RCX, 1);
        a.mov_ri(Gpr::RAX, 0);
        a.movsd(Xmm(0), c1);
        a.bind(body);
        a.cmp_ri(Gpr::RCX, 20);
        a.jcc(Cond::G, done);
        a.call(func);
        a.alu_ri(AluOp::Add, Gpr::RCX, 1);
        a.addsd(Xmm(0), Xmm(0)); // fp-arith: terminates any block
        a.jmp(body);
        a.bind(func);
        a.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
        a.alu_ri(AluOp::Xor, Gpr::RDX, 0);
        a.ret();
        a.bind(done);
        a.store(Mem::abs(crate::mem::DATA_BASE as i64), Gpr::RAX);
        a.halt();
        a.finish()
    }

    fn fresh(p: &crate::Program, superblocks: bool) -> Machine {
        let mut m = Machine::new(CostModel::r815());
        m.superblocks = superblocks;
        m.load_program(p);
        m
    }

    /// Full-state equivalence: run the same program to completion with
    /// superblocks on and off; every piece of architectural and
    /// accounting state must match bit for bit.
    fn assert_equiv(mon: &Machine, moff: &Machine) {
        assert_eq!(mon.icount, moff.icount, "icount");
        assert_eq!(mon.fp_icount, moff.fp_icount, "fp_icount");
        assert_eq!(mon.cycles, moff.cycles, "cycles");
        assert_eq!(mon.rip, moff.rip, "rip");
        assert_eq!(mon.gpr, moff.gpr, "gpr");
        assert_eq!(mon.xmm, moff.xmm, "xmm");
        assert_eq!(mon.output, moff.output, "output");
    }

    #[test]
    fn superblocks_match_stepped_execution_exactly() {
        let p = mixed_program();
        let mut mon = fresh(&p, true);
        let mut moff = fresh(&p, false);
        assert_eq!(mon.run(1_000_000), Event::Halted);
        assert_eq!(moff.run(1_000_000), Event::Halted);
        assert_equiv(&mon, &moff);
        let st = mon.superblock_stats();
        assert!(st.built > 0, "blocks must actually form");
        assert!(st.dispatches > 0, "blocks must actually dispatch");
        assert!(st.block_insts > 0);
        assert_eq!(moff.superblock_stats(), BlockCacheStats::default());
    }

    #[test]
    fn capped_blocks_match_too() {
        let p = mixed_program();
        for cap in [1u32, 2, 3] {
            let mut mcap = fresh(&p, true);
            mcap.set_superblocks(true, cap);
            let mut moff = fresh(&p, false);
            assert_eq!(mcap.run(1_000_000), Event::Halted);
            assert_eq!(moff.run(1_000_000), Event::Halted);
            assert_equiv(&mcap, &moff);
            if cap == 1 {
                // Passthrough: the 2-instruction minimum is unreachable.
                assert_eq!(mcap.superblock_stats().built, 0);
            }
        }
    }

    #[test]
    fn unmasked_fp_exceptions_land_identically() {
        // With every exception unmasked (the engine's configuration) the
        // addsd traps; the surfaced event and all state must match.
        let p = mixed_program();
        let mut mon = fresh(&p, true);
        let mut moff = fresh(&p, false);
        mon.mxcsr.unmask_all();
        moff.mxcsr.unmask_all();
        loop {
            let eon = mon.run(1_000_000);
            let eoff = moff.run(1_000_000);
            assert_eq!(eon, eoff, "event streams must match");
            assert_equiv(&mon, &moff);
            match eon {
                Event::Halted => break,
                Event::FpException { rip, .. } => {
                    // Resume past the faulting instruction like a runtime
                    // would (skip emulation; this is an equivalence test).
                    let (_, len) = mon.fetch(rip).unwrap();
                    mon.mxcsr.clear_flags();
                    moff.mxcsr.clear_flags();
                    mon.rip = rip + u64::from(len);
                    moff.rip = mon.rip;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn budget_fault_identical_on_off_including_mid_block() {
        // Straight-line run long enough to form a fat block, then sweep
        // every budget across it: the Budget fault must land at the same
        // icount/cycles/rip whether the boundary falls mid-block or not.
        let mut a = Asm::new();
        for i in 0..40 {
            a.alu_ri(AluOp::Add, Gpr::RAX, i);
        }
        a.halt();
        let p = a.finish();
        for budget in 0..44u64 {
            let mut mon = fresh(&p, true);
            let mut moff = fresh(&p, false);
            let eon = mon.run(budget);
            let eoff = moff.run(budget);
            assert_eq!(eon, eoff, "budget {budget}");
            assert_equiv(&mon, &moff);
            if budget <= 40 {
                // At exactly 40 the loop-top check fires before the halt
                // is even fetched — budget semantics, pinned both modes.
                assert_eq!(eon, Event::Fault(Fault::Budget), "budget {budget}");
                assert_eq!(mon.icount, budget);
            } else {
                assert_eq!(eon, Event::Halted, "budget {budget}");
            }
        }
    }

    #[test]
    fn budget_resume_converges_with_stepped() {
        // Driving the machine in many tiny budget slices (the engine's
        // re-entry pattern) must retire the same program state as one big
        // stepped run.
        let p = mixed_program();
        let mut mon = fresh(&p, true);
        let mut moff = fresh(&p, false);
        let ev = loop {
            match mon.run(7) {
                Event::Fault(Fault::Budget) => continue,
                other => break other,
            }
        };
        assert_eq!(ev, Event::Halted);
        assert_eq!(moff.run(1_000_000), Event::Halted);
        assert_equiv(&mon, &moff);
    }

    #[test]
    fn patched_blocks_reform_after_invalidation() {
        // Form blocks over a straight-line run, patch an instruction in
        // the middle (same length, different immediate), and check the
        // re-run picks up the patch — and matches a stepped machine
        // patched the same way.
        let mut a = Asm::new();
        let top = a.here_label();
        let _ = top;
        a.mov_ri(Gpr::RAX, 0);
        for _ in 0..8 {
            a.alu_ri(AluOp::Add, Gpr::RAX, 5);
        }
        a.halt();
        let p = a.finish();

        let mut mon = fresh(&p, true);
        let mut moff = fresh(&p, false);
        assert_eq!(mon.run(1_000_000), Event::Halted);
        assert_eq!(moff.run(1_000_000), Event::Halted);
        assert_eq!(mon.gpr[0], 40);
        let built_before = mon.superblock_stats().built;
        assert!(built_before > 0);

        // Patch the third add (imm 5 → 9): encode the replacement at the
        // same address. The add instructions are identical, so find the
        // site by encoding one add and stepping over the mov.
        let mut one_add = Vec::new();
        let add_len = encode(
            &Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::RAX,
                imm: 5,
            },
            &mut one_add,
        );
        let mut mov = Vec::new();
        let mov_len = encode(
            &Inst::MovRI {
                dst: Gpr::RAX,
                imm: 0,
            },
            &mut mov,
        );
        let site = CODE_BASE + mov_len as u64 + 2 * add_len as u64;
        let mut patched = Vec::new();
        let plen = encode(
            &Inst::AluRI {
                op: AluOp::Add,
                dst: Gpr::RAX,
                imm: 9,
            },
            &mut patched,
        );
        assert_eq!(plen, add_len, "replacement must fit in place");

        for m in [&mut mon, &mut moff] {
            m.patch_code(site, &patched);
            m.rip = m.mem.code_end - 1; // re-enter at... reset below
        }
        // Re-run from the entry point on the patched code.
        for m in [&mut mon, &mut moff] {
            m.rip = CODE_BASE;
            m.gpr = [0; 16];
        }
        assert_eq!(mon.run(1_000_000), Event::Halted);
        assert_eq!(moff.run(1_000_000), Event::Halted);
        assert_eq!(mon.gpr[0], 44, "7 adds of 5 + 1 add of 9");
        assert_equiv(&mon, &moff);
        let st = mon.superblock_stats();
        assert!(st.invalidated > 0, "the patch must drop overlapping blocks");
        assert!(
            st.built > built_before,
            "blocks must re-form after invalidation"
        );
    }

    #[test]
    fn cache_resets_on_new_program_same_machine() {
        // Fleet reuse: loading a *different* program into the same machine
        // must not serve the old program's blocks (fingerprint discipline).
        let build = |imm: i64| {
            let mut a = Asm::new();
            a.mov_ri(Gpr::RAX, 0);
            for _ in 0..4 {
                a.alu_ri(AluOp::Add, Gpr::RAX, imm);
            }
            a.halt();
            a.finish()
        };
        let (pa, pb) = (build(3), build(8));
        assert_eq!(pa.code.len(), pb.code.len());
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&pa);
        assert_eq!(m.run(1_000), Event::Halted);
        assert_eq!(m.gpr[0], 12);
        m.load_program(&pb);
        assert_eq!(m.run(1_000), Event::Halted);
        assert_eq!(m.gpr[0], 32, "stale blocks would replay imm=3");
    }
}
