//! # fpvm-machine — the simulated x64-FP substrate
//!
//! A deterministic, cycle-accounted simulator of an x64 subset with SSE2
//! floating point and **precise, maskable FP exceptions** — the substrate
//! on which this reproduction runs the entire FPVM pipeline (see DESIGN.md
//! §2 for the substitution argument).
//!
//! The crate provides:
//! * [`isa`] — the instruction set, with the same virtualization holes as
//!   real x64 (bitwise FP ops, integer loads, `movq` never fault).
//! * [`encode`](mod@encode) — variable-length binary encoding + decoder (the Capstone
//!   analogue).
//! * [`asm`] — a two-pass assembler producing [`Program`] images.
//! * [`exec`] — the [`Machine`] executor with `%mxcsr` semantics.
//! * [`cost`] — cycle cost profiles for the paper's three machines and the
//!   §6 delivery-mode variants.
//! * [`mem`] — guest memory with the segment layout the GC scans.
//! * [`block`] — superblock dispatch: batched execution of straight-line
//!   guest code between traps (host-time only; accounting-pinned).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod block;
pub mod cost;
pub mod encode;
pub mod exec;
pub mod isa;
pub mod mem;
pub mod mxcsr;
pub mod taint;

pub use asm::{Asm, Label, Program};
pub use block::{BlockCacheStats, DEFAULT_BLOCK_CAP};
pub use cost::{CostModel, DeliveryMode};
pub use encode::{decode, encode, encoded_len, DecodeError, MAX_INST_LEN};
pub use exec::{Event, Fault, Machine, OutputEvent};
pub use isa::*;
pub use mem::{MemFault, Memory, CODE_BASE, DATA_BASE, HEAP_BASE};
pub use mxcsr::{Mxcsr, RFlags};
pub use taint::{TaintEvent, TaintPlane, TaintSinkKind, TaintSite};
