//! The simulated x64-subset instruction set.
//!
//! This ISA reproduces, deliberately, the properties of real x64 that make
//! floating point "almost virtualizable" (§1, §4.2):
//!
//! * SSE2 scalar/packed double arithmetic (`addsd` … `sqrtsd`, `addpd` …)
//!   **faults** per `%mxcsr` when an unmasked exception condition arises —
//!   including consumption of a signaling NaN. These are FPVM's hardware
//!   hooks.
//! * Bitwise FP ops (`xorpd`/`andpd`/`orpd` — the compiler idioms for
//!   negation, `fabs`, sign tests), `movq` between XMM and GPR, and plain
//!   integer loads of memory that happens to hold FP bits **never fault**:
//!   these are the holes the static analysis (fpvm-analysis) must patch.
//! * External calls (libm, printf) receive raw bit patterns: without the
//!   runtime's math/output interposition they would bit-pick NaN-boxes
//!   apart (the "printing problem" and "externals" limitations of §2).

use std::fmt;

/// General-purpose register (16, x64 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gpr(pub u8);

#[allow(missing_docs)]
impl Gpr {
    pub const RAX: Gpr = Gpr(0);
    pub const RCX: Gpr = Gpr(1);
    pub const RDX: Gpr = Gpr(2);
    pub const RBX: Gpr = Gpr(3);
    pub const RSP: Gpr = Gpr(4);
    pub const RBP: Gpr = Gpr(5);
    pub const RSI: Gpr = Gpr(6);
    pub const RDI: Gpr = Gpr(7);
    pub const R8: Gpr = Gpr(8);
    pub const R9: Gpr = Gpr(9);
    pub const R10: Gpr = Gpr(10);
    pub const R11: Gpr = Gpr(11);
    pub const R12: Gpr = Gpr(12);
    pub const R13: Gpr = Gpr(13);
    pub const R14: Gpr = Gpr(14);
    pub const R15: Gpr = Gpr(15);
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        write!(f, "{}", NAMES[self.0 as usize & 15])
    }
}

/// XMM register (16, two 64-bit lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xmm(pub u8);

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0 & 15)
    }
}

/// An x64-style memory operand: `disp + base + index × scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Base register.
    pub base: Option<Gpr>,
    /// Index register.
    pub index: Option<Gpr>,
    /// Scale: 1, 2, 4 or 8.
    pub scale: u8,
    /// Displacement.
    pub disp: i64,
}

impl Mem {
    /// `[base + disp]`.
    pub fn base_disp(base: Gpr, disp: i64) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[disp]` (absolute).
    pub fn abs(disp: i64) -> Mem {
        Mem {
            base: None,
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[base + index*scale + disp]`.
    pub fn bis(base: Gpr, index: Gpr, scale: u8, disp: i64) -> Mem {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8));
        Mem {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 || first {
            if !first && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{:#x}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// XMM-or-memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XM {
    /// An XMM register.
    Reg(Xmm),
    /// A memory operand.
    Mem(Mem),
}

impl From<Xmm> for XM {
    fn from(x: Xmm) -> XM {
        XM::Reg(x)
    }
}
impl From<Mem> for XM {
    fn from(m: Mem) -> XM {
        XM::Mem(m)
    }
}

/// GPR-or-memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RM {
    /// A general-purpose register.
    Reg(Gpr),
    /// A memory operand.
    Mem(Mem),
}

impl From<Gpr> for RM {
    fn from(r: Gpr) -> RM {
        RM::Reg(r)
    }
}
impl From<Mem> for RM {
    fn from(m: Mem) -> RM {
        RM::Mem(m)
    }
}

/// Access width for integer loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Width {
    W8,
    W16,
    W32,
    W64,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }
}

/// Integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    IMul,
}

/// Branch condition (subset of x64 `jcc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    /// ZF = 1.
    E,
    /// ZF = 0.
    Ne,
    /// SF ≠ OF (signed less).
    L,
    /// ZF = 1 or SF ≠ OF.
    Le,
    /// ZF = 0 and SF = OF.
    G,
    /// SF = OF.
    Ge,
    /// CF = 1 (unsigned below; "less" after ucomisd).
    B,
    /// CF = 1 or ZF = 1.
    Be,
    /// CF = 0 and ZF = 0 (unsigned above; "greater" after ucomisd).
    A,
    /// CF = 0.
    Ae,
    /// PF = 1 (unordered after ucomisd).
    P,
    /// PF = 0.
    Np,
    /// SF = 1.
    S,
    /// SF = 0.
    Ns,
}

/// External functions: the boundary between the virtualized process and
/// code FPVM does not control (libm, libc I/O, the allocator). Scalar FP
/// arguments arrive in `xmm0`/`xmm1`, integer arguments in `rdi`; FP results
/// return in `xmm0`, integer results in `rax`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ExtFn {
    // libm — interposable by FPVM's math wrapper.
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Atan2,
    Exp,
    Log,
    Log10,
    Pow,
    Floor,
    Ceil,
    Fabs,
    // stdio — the "printing problem": reads raw f64 bits.
    PrintF64,
    PrintI64,
    // process services.
    AllocHeap,
    Exit,
}

impl ExtFn {
    /// True for math-library functions (subject to math interposition).
    pub fn is_math(self) -> bool {
        !matches!(
            self,
            ExtFn::PrintF64 | ExtFn::PrintI64 | ExtFn::AllocHeap | ExtFn::Exit
        )
    }

    /// Number of `f64` arguments (in xmm0..).
    pub fn fp_args(self) -> usize {
        match self {
            ExtFn::Atan2 | ExtFn::Pow => 2,
            ExtFn::PrintI64 | ExtFn::AllocHeap | ExtFn::Exit => 0,
            _ => 1,
        }
    }
}

/// Kind of software trap instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Correctness trap inserted by static analysis (§4.2): delivered like a
    /// hardware exception (int3 → SIGTRAP → FPVM) in the prototype.
    Correctness,
    /// Patch-site call installed by the trap-and-patch engine (§3.2):
    /// a direct call into the handler, far cheaper than a trap.
    PatchCall,
}

/// One instruction of the simulated ISA.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub enum Inst {
    // ---- FP data movement (never faults) --------------------------------
    /// movsd dst, src (64-bit lane 0; zeroes upper lane on reg←mem like x64).
    MovSd {
        dst: XM,
        src: XM,
    },
    /// movapd: full 128-bit move.
    MovApd {
        dst: XM,
        src: XM,
    },
    // ---- scalar FP arithmetic (faults per mxcsr) -------------------------
    AddSd {
        dst: Xmm,
        src: XM,
    },
    SubSd {
        dst: Xmm,
        src: XM,
    },
    MulSd {
        dst: Xmm,
        src: XM,
    },
    DivSd {
        dst: Xmm,
        src: XM,
    },
    MinSd {
        dst: Xmm,
        src: XM,
    },
    MaxSd {
        dst: Xmm,
        src: XM,
    },
    SqrtSd {
        dst: Xmm,
        src: XM,
    },
    /// Fused multiply-add: dst = dst × a + b (vfmadd213-style).
    FmaSd {
        dst: Xmm,
        a: Xmm,
        b: XM,
    },
    // ---- packed FP arithmetic (2 lanes, faults per mxcsr) ---------------
    AddPd {
        dst: Xmm,
        src: XM,
    },
    SubPd {
        dst: Xmm,
        src: XM,
    },
    MulPd {
        dst: Xmm,
        src: XM,
    },
    DivPd {
        dst: Xmm,
        src: XM,
    },
    // ---- compares (fault on NaN per mxcsr) -------------------------------
    UComISd {
        a: Xmm,
        b: XM,
    },
    ComISd {
        a: Xmm,
        b: XM,
    },
    // ---- conversions (fault per mxcsr) -----------------------------------
    /// cvtsi2sd from a 32- or 64-bit integer.
    CvtSi2Sd {
        dst: Xmm,
        src: RM,
        w: Width,
    },
    /// cvttsd2si (truncating) to a 32- or 64-bit integer.
    CvtTSd2Si {
        dst: Gpr,
        src: XM,
        w: Width,
    },
    CvtSd2Ss {
        dst: Xmm,
        src: XM,
    },
    CvtSs2Sd {
        dst: Xmm,
        src: XM,
    },
    // ---- bitwise FP: the virtualization holes (never fault) --------------
    XorPd {
        dst: Xmm,
        src: XM,
    },
    AndPd {
        dst: Xmm,
        src: XM,
    },
    OrPd {
        dst: Xmm,
        src: XM,
    },
    /// movq r64 ← xmm (lane 0) — leaks FP bits into the integer world.
    MovQXG {
        dst: Gpr,
        src: Xmm,
    },
    /// movq xmm ← r64.
    MovQGX {
        dst: Xmm,
        src: Gpr,
    },
    // ---- integer ----------------------------------------------------------
    MovRR {
        dst: Gpr,
        src: Gpr,
    },
    MovRI {
        dst: Gpr,
        imm: i64,
    },
    /// Zero-extending load — an integer window onto memory that may hold FP
    /// bits (the paper's Fig. 6/7 "sink" instructions).
    Load {
        dst: Gpr,
        addr: Mem,
        w: Width,
    },
    Store {
        addr: Mem,
        src: Gpr,
        w: Width,
    },
    Lea {
        dst: Gpr,
        addr: Mem,
    },
    AluRR {
        op: AluOp,
        dst: Gpr,
        src: Gpr,
    },
    AluRI {
        op: AluOp,
        dst: Gpr,
        imm: i64,
    },
    /// Signed division dst = dst / src (simplified idiv).
    DivR {
        dst: Gpr,
        src: Gpr,
    },
    /// Signed remainder dst = dst % src.
    RemR {
        dst: Gpr,
        src: Gpr,
    },
    CmpRR {
        a: Gpr,
        b: Gpr,
    },
    CmpRI {
        a: Gpr,
        imm: i64,
    },
    TestRR {
        a: Gpr,
        b: Gpr,
    },
    // ---- control flow ------------------------------------------------------
    /// Relative jump (target = address of next instruction + rel).
    Jmp {
        rel: i32,
    },
    Jcc {
        cond: Cond,
        rel: i32,
    },
    Call {
        rel: i32,
    },
    CallExt {
        f: ExtFn,
    },
    Ret,
    Push {
        src: Gpr,
    },
    Pop {
        dst: Gpr,
    },
    // ---- special ------------------------------------------------------------
    /// Software trap into FPVM (patched in by fpvm-analysis or the
    /// trap-and-patch engine). `id` indexes the patch side table.
    Trap {
        kind: TrapKind,
        id: u16,
    },
    Halt,
    Nop,
}

impl Inst {
    /// True for instructions that execute floating point arithmetic and can
    /// raise `%mxcsr` exceptions (the trap-and-emulate hooks).
    pub fn is_fp_arith(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            AddSd { .. }
                | SubSd { .. }
                | MulSd { .. }
                | DivSd { .. }
                | MinSd { .. }
                | MaxSd { .. }
                | SqrtSd { .. }
                | FmaSd { .. }
                | AddPd { .. }
                | SubPd { .. }
                | MulPd { .. }
                | DivPd { .. }
                | UComISd { .. }
                | ComISd { .. }
                | CvtSi2Sd { .. }
                | CvtTSd2Si { .. }
                | CvtSd2Ss { .. }
                | CvtSs2Sd { .. }
        )
    }

    /// True for the non-faulting instructions that can still consume or
    /// leak FP bit patterns — the virtualization holes of §4.2.
    pub fn is_fp_hole(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            XorPd { .. } | AndPd { .. } | OrPd { .. } | MovQXG { .. } | Load { .. }
        )
    }
}

impl fmt::Display for XM {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XM::Reg(x) => write!(f, "{x}"),
            XM::Mem(m) => write!(f, "{m}"),
        }
    }
}

impl fmt::Display for RM {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RM::Reg(r) => write!(f, "{r}"),
            RM::Mem(m) => write!(f, "{m}"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match self {
            MovSd { dst, src } => write!(f, "movsd   {dst}, {src}"),
            MovApd { dst, src } => write!(f, "movapd  {dst}, {src}"),
            AddSd { dst, src } => write!(f, "addsd   {dst}, {src}"),
            SubSd { dst, src } => write!(f, "subsd   {dst}, {src}"),
            MulSd { dst, src } => write!(f, "mulsd   {dst}, {src}"),
            DivSd { dst, src } => write!(f, "divsd   {dst}, {src}"),
            MinSd { dst, src } => write!(f, "minsd   {dst}, {src}"),
            MaxSd { dst, src } => write!(f, "maxsd   {dst}, {src}"),
            SqrtSd { dst, src } => write!(f, "sqrtsd  {dst}, {src}"),
            FmaSd { dst, a, b } => write!(f, "vfmadd  {dst}, {a}, {b}"),
            AddPd { dst, src } => write!(f, "addpd   {dst}, {src}"),
            SubPd { dst, src } => write!(f, "subpd   {dst}, {src}"),
            MulPd { dst, src } => write!(f, "mulpd   {dst}, {src}"),
            DivPd { dst, src } => write!(f, "divpd   {dst}, {src}"),
            UComISd { a, b } => write!(f, "ucomisd {a}, {b}"),
            ComISd { a, b } => write!(f, "comisd  {a}, {b}"),
            CvtSi2Sd { dst, src, w } => write!(f, "cvtsi2sd {dst}, {src} ({w:?})"),
            CvtTSd2Si { dst, src, w } => write!(f, "cvttsd2si {dst}, {src} ({w:?})"),
            CvtSd2Ss { dst, src } => write!(f, "cvtsd2ss {dst}, {src}"),
            CvtSs2Sd { dst, src } => write!(f, "cvtss2sd {dst}, {src}"),
            XorPd { dst, src } => write!(f, "xorpd   {dst}, {src}"),
            AndPd { dst, src } => write!(f, "andpd   {dst}, {src}"),
            OrPd { dst, src } => write!(f, "orpd    {dst}, {src}"),
            MovQXG { dst, src } => write!(f, "movq    {dst}, {src}"),
            MovQGX { dst, src } => write!(f, "movq    {dst}, {src}"),
            MovRR { dst, src } => write!(f, "mov     {dst}, {src}"),
            MovRI { dst, imm } => write!(f, "mov     {dst}, {imm:#x}"),
            Load { dst, addr, w } => write!(f, "mov     {dst}, {w:?} {addr}"),
            Store { addr, src, w } => write!(f, "mov     {w:?} {addr}, {src}"),
            Lea { dst, addr } => write!(f, "lea     {dst}, {addr}"),
            AluRR { op, dst, src } => write!(f, "{op:<7?} {dst}, {src}"),
            AluRI { op, dst, imm } => write!(f, "{op:<7?} {dst}, {imm:#x}"),
            DivR { dst, src } => write!(f, "idiv    {dst}, {src}"),
            RemR { dst, src } => write!(f, "irem    {dst}, {src}"),
            CmpRR { a, b } => write!(f, "cmp     {a}, {b}"),
            CmpRI { a, imm } => write!(f, "cmp     {a}, {imm:#x}"),
            TestRR { a, b } => write!(f, "test    {a}, {b}"),
            Jmp { rel } => write!(f, "jmp     {rel:+}"),
            Jcc { cond, rel } => write!(f, "j{cond:<6?} {rel:+}"),
            Call { rel } => write!(f, "call    {rel:+}"),
            CallExt { f: ext } => write!(f, "call    {ext:?}@plt"),
            Ret => write!(f, "ret"),
            Push { src } => write!(f, "push    {src}"),
            Pop { dst } => write!(f, "pop     {dst}"),
            Trap { kind, id } => write!(f, "trap    {kind:?}#{id}"),
            Halt => write!(f, "hlt"),
            Nop => write!(f, "nop"),
        }
    }
}
