//! Shadow NaN-box taint plane — the dynamic oracle the §4.2 static
//! analysis is audited against.
//!
//! One taint bit per GPR, per XMM lane, and per 8-byte memory word means
//! "this location *may* hold NaN-box bits". The runtime seeds taint when
//! it boxes a result (via the `Machine::taint_reclassify_*` hooks); the
//! plane then propagates it through moves, ALU ops, loads and stores in
//! lock-step with execution, and records a [`TaintEvent`] whenever an
//! integer-world instruction consumes tainted bits at a site the static
//! patcher did **not** trap. A recorded event whose consumed bits really
//! decode as a box (`boxed == true`) is a soundness hole; a site the
//! patcher trapped but that never consumes a box is precision loss.
//!
//! The plane is deliberately conservative (NSan-style shadow execution):
//! partial-width stores never *clear* a word's taint, and narrow loads of
//! a tainted word taint the whole destination register. It is attached to
//! the interpreter only when enabled ([`Machine::taint_enable`]); the
//! normal hot path is untouched and its deterministic accounting is
//! bit-identical (pinned by `fig9_taint_identity` in fpvm-bench).

use crate::exec::Machine;
use crate::isa::{ExtFn, Gpr, Inst, XM};
use fpvm_nanbox::is_boxed;
use std::collections::{BTreeMap, HashSet};

/// Cap on individually recorded events (sites aggregate everything).
const MAX_EVENTS: usize = 1024;

/// Why a taint consumption was classified as a leak (mirrors the static
/// analysis' `SinkReason`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintSinkKind {
    /// Integer load of a tainted memory word.
    IntLoad,
    /// `movq r64 ← xmm` of a tainted lane.
    MovqLeak,
    /// Bitwise FP op (`xorpd`/`andpd`/`orpd`) consuming a tainted lane.
    BitwiseFp,
}

/// One dynamic taint consumption at an unpatched site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaintEvent {
    /// Address of the consuming instruction.
    pub rip: u64,
    /// The instruction.
    pub inst: Inst,
    /// Leak classification.
    pub kind: TaintSinkKind,
    /// Whether the consumed bits actually decode as a NaN-box (a *true*
    /// leak, not just conservative taint spread).
    pub boxed: bool,
}

/// Per-site aggregation of taint consumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaintSite {
    /// The instruction at the site.
    pub inst: Inst,
    /// Leak classification.
    pub kind: TaintSinkKind,
    /// Times tainted bits were consumed here.
    pub hits: u64,
    /// Times the consumed bits actually decoded as a NaN-box.
    pub boxed_hits: u64,
}

/// The shadow taint plane (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TaintPlane {
    gpr: [bool; 16],
    xmm: [[bool; 2]; 16],
    /// Tainted 8-byte-aligned memory word addresses.
    mem: HashSet<u64>,
    /// Sites the patcher trapped — events there are never leaks.
    pub(crate) trapped: HashSet<u64>,
    /// Event recording suppressed (during masked re-execution at traps).
    pub(crate) suppress: bool,
    /// Per-site leak aggregation, keyed by instruction address.
    pub sites: BTreeMap<u64, TaintSite>,
    /// Individually recorded events (capped at an internal limit; `sites`
    /// aggregates everything).
    pub events: Vec<TaintEvent>,
    /// Total leak events, including those beyond the recording cap.
    pub events_total: u64,
}

/// Pre-execution operand capture: the effective address and stack pointer
/// an instruction will use, plus whether the bits a would-be sink consumes
/// actually decode as a box — all read *before* the instruction mutates
/// the machine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreState {
    ea: Option<u64>,
    rsp: u64,
    sink_boxed: bool,
}

impl PreState {
    pub(crate) fn capture(m: &Machine, inst: &Inst) -> PreState {
        use Inst::*;
        let ea = match inst {
            MovSd { dst, src } | MovApd { dst, src } => match (dst, src) {
                (XM::Mem(mm), _) | (_, XM::Mem(mm)) => Some(m.ea(mm)),
                _ => None,
            },
            XorPd {
                src: XM::Mem(mm), ..
            }
            | AndPd {
                src: XM::Mem(mm), ..
            }
            | OrPd {
                src: XM::Mem(mm), ..
            } => Some(m.ea(mm)),
            Load { addr, .. } | Store { addr, .. } => Some(m.ea(addr)),
            _ => None,
        };
        let sink_boxed = match inst {
            XorPd { dst, src } | AndPd { dst, src } | OrPd { dst, src } => {
                let d = m.xmm[dst.0 as usize];
                let s = m.read_xm128(src).unwrap_or([0, 0]);
                [d[0], d[1], s[0], s[1]].iter().any(|&x| is_boxed(x))
            }
            MovQXG { src, .. } => is_boxed(m.xmm[src.0 as usize][0]),
            Load { addr, w, .. } => {
                let ea = m.ea(addr);
                let mut boxed = m.mem.read_u64(ea & !7).map(is_boxed).unwrap_or(false);
                if (ea & 7) + w.bytes() > 8 {
                    boxed |= m.mem.read_u64((ea & !7) + 8).map(is_boxed).unwrap_or(false);
                }
                boxed
            }
            _ => false,
        };
        PreState {
            ea,
            rsp: m.gpr[Gpr::RSP.0 as usize],
            sink_boxed,
        }
    }
}

impl TaintPlane {
    /// Is this 8-byte-aligned word (of `addr`) tainted?
    pub fn mem_word(&self, addr: u64) -> bool {
        self.mem.contains(&(addr & !7))
    }

    /// Is GPR `r` tainted?
    pub fn gpr(&self, r: usize) -> bool {
        self.gpr[r]
    }

    /// Is XMM register `r`, lane `l` tainted?
    pub fn xmm(&self, r: usize, l: usize) -> bool {
        self.xmm[r][l]
    }

    pub(crate) fn set_gpr(&mut self, r: usize, t: bool) {
        self.gpr[r] = t;
    }

    pub(crate) fn set_xmm(&mut self, r: usize, l: usize, t: bool) {
        self.xmm[r][l] = t;
    }

    pub(crate) fn set_mem_word(&mut self, addr: u64, t: bool) {
        if t {
            self.mem.insert(addr & !7);
        } else {
            self.mem.remove(&(addr & !7));
        }
    }

    /// Store of `len` bytes at `ea`: an aligned full-word store sets the
    /// word's taint exactly; partial or straddling stores only ever *add*
    /// taint (box bits may survive in the untouched bytes).
    fn mem_store(&mut self, ea: u64, len: u64, t: bool) {
        if ea & 7 == 0 && len == 8 {
            self.set_mem_word(ea, t);
        } else if t {
            let mut w = ea & !7;
            while w < ea + len {
                self.mem.insert(w);
                w += 8;
            }
        }
    }

    /// Any word overlapping `[ea, ea+len)` tainted?
    fn mem_load(&self, ea: u64, len: u64) -> bool {
        let mut w = ea & !7;
        while w < ea + len {
            if self.mem.contains(&w) {
                return true;
            }
            w += 8;
        }
        false
    }

    fn sink(&mut self, rip: u64, inst: &Inst, kind: TaintSinkKind, boxed: bool) {
        if self.suppress || self.trapped.contains(&rip) {
            return;
        }
        let e = self.sites.entry(rip).or_insert(TaintSite {
            inst: *inst,
            kind,
            hits: 0,
            boxed_hits: 0,
        });
        e.hits += 1;
        if boxed {
            e.boxed_hits += 1;
        }
        self.events_total += 1;
        if self.events.len() < MAX_EVENTS {
            self.events.push(TaintEvent {
                rip,
                inst: *inst,
                kind,
                boxed,
            });
        }
    }

    /// Transfer function: called after `inst` at `rip` retired, with the
    /// machine in its *post*-state and operand addresses captured in `pre`.
    pub(crate) fn step(&mut self, m: &Machine, inst: &Inst, rip: u64, pre: &PreState) {
        use Inst::*;
        match inst {
            MovSd { dst, src } => {
                let st = match src {
                    XM::Reg(x) => self.xmm[x.0 as usize][0],
                    XM::Mem(_) => self.mem_word(pre.ea.unwrap()),
                };
                match dst {
                    XM::Reg(x) => {
                        self.xmm[x.0 as usize][0] = st;
                        if matches!(src, XM::Mem(_)) {
                            self.xmm[x.0 as usize][1] = false;
                        }
                    }
                    XM::Mem(_) => self.mem_store(pre.ea.unwrap(), 8, st),
                }
            }
            MovApd { dst, src } => {
                let st = match src {
                    XM::Reg(x) => self.xmm[x.0 as usize],
                    XM::Mem(_) => {
                        let ea = pre.ea.unwrap();
                        [self.mem_word(ea), self.mem_word(ea + 8)]
                    }
                };
                match dst {
                    XM::Reg(x) => self.xmm[x.0 as usize] = st,
                    XM::Mem(_) => {
                        let ea = pre.ea.unwrap();
                        self.mem_store(ea, 8, st[0]);
                        self.mem_store(ea + 8, 8, st[1]);
                    }
                }
            }
            // Native FP arithmetic writes a freshly computed f64 — never a
            // signaling-NaN box pattern.
            AddSd { dst, .. }
            | SubSd { dst, .. }
            | MulSd { dst, .. }
            | DivSd { dst, .. }
            | MinSd { dst, .. }
            | MaxSd { dst, .. }
            | SqrtSd { dst, .. }
            | FmaSd { dst, .. }
            | CvtSi2Sd { dst, .. }
            | CvtSs2Sd { dst, .. } => self.xmm[dst.0 as usize][0] = false,
            AddPd { dst, .. } | SubPd { dst, .. } | MulPd { dst, .. } | DivPd { dst, .. } => {
                self.xmm[dst.0 as usize] = [false, false];
            }
            // Partial 32-bit lane overwrite: the upper half may still hold
            // box bits — keep the lane's taint.
            CvtSd2Ss { .. } => {}
            CvtTSd2Si { dst, .. } => self.gpr[dst.0 as usize] = false,
            UComISd { .. } | ComISd { .. } => {}
            XorPd { dst, src } | AndPd { dst, src } | OrPd { dst, src } => {
                let st = match src {
                    XM::Reg(x) => self.xmm[x.0 as usize],
                    XM::Mem(_) => {
                        let ea = pre.ea.unwrap();
                        [self.mem_word(ea), self.mem_word(ea + 8)]
                    }
                };
                let d = self.xmm[dst.0 as usize];
                let consumed = d[0] || d[1] || st[0] || st[1];
                self.xmm[dst.0 as usize] = [d[0] || st[0], d[1] || st[1]];
                if consumed {
                    self.sink(rip, inst, TaintSinkKind::BitwiseFp, pre.sink_boxed);
                }
            }
            MovQXG { dst, src } => {
                let t = self.xmm[src.0 as usize][0];
                self.gpr[dst.0 as usize] = t;
                if t {
                    self.sink(rip, inst, TaintSinkKind::MovqLeak, pre.sink_boxed);
                }
            }
            MovQGX { dst, src } => {
                self.xmm[dst.0 as usize] = [self.gpr[src.0 as usize], false];
            }
            MovRR { dst, src } => self.gpr[dst.0 as usize] = self.gpr[src.0 as usize],
            MovRI { dst, .. } | Lea { dst, .. } => self.gpr[dst.0 as usize] = false,
            Load { dst, w, .. } => {
                let t = self.mem_load(pre.ea.unwrap(), w.bytes());
                self.gpr[dst.0 as usize] = t;
                if t {
                    self.sink(rip, inst, TaintSinkKind::IntLoad, pre.sink_boxed);
                }
            }
            Store { src, w, .. } => {
                self.mem_store(pre.ea.unwrap(), w.bytes(), self.gpr[src.0 as usize]);
            }
            AluRR { op, dst, src } => {
                if matches!(op, crate::isa::AluOp::Xor) && dst == src {
                    self.gpr[dst.0 as usize] = false;
                } else {
                    self.gpr[dst.0 as usize] |= self.gpr[src.0 as usize];
                }
            }
            // Immediate ALU keeps the destination's taint: masking/shifting
            // box bits may still expose them (conservative).
            AluRI { .. } => {}
            DivR { dst, src } | RemR { dst, src } => {
                self.gpr[dst.0 as usize] |= self.gpr[src.0 as usize];
            }
            CmpRR { .. } | CmpRI { .. } | TestRR { .. } => {}
            Jmp { .. } | Jcc { .. } | Ret => {}
            Call { .. } => {
                // The pushed return address is a code pointer, never a box.
                self.mem_store(pre.rsp.wrapping_sub(8), 8, false);
            }
            Push { src } => {
                self.mem_store(pre.rsp.wrapping_sub(8), 8, self.gpr[src.0 as usize]);
            }
            Pop { dst } => self.gpr[dst.0 as usize] = self.mem_word(pre.rsp),
            // Native external effects are applied by `exec_ext_native`
            // itself (it is also called directly by the runtime).
            CallExt { .. } => {}
            Nop | Halt | Trap { .. } => {}
        }
        let _ = m;
    }

    /// Taint effect of a *natively executed* external call.
    pub(crate) fn apply_ext(&mut self, f: ExtFn) {
        match f {
            // libm fabs is a bit op: a box in, a (sign-cleared) box out.
            ExtFn::Fabs => {}
            ExtFn::PrintF64 | ExtFn::PrintI64 | ExtFn::Exit => {}
            ExtFn::AllocHeap => self.gpr[Gpr::RAX.0 as usize] = false,
            // Every other math routine computes a fresh f64 into xmm0.
            _ => self.xmm[0][0] = false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::cost::CostModel;
    use crate::exec::{Event, Machine};
    use crate::isa::{AluOp, Mem};
    use crate::Xmm;
    use fpvm_nanbox::{encode, ShadowKey};

    fn boxed_bits() -> u64 {
        encode(ShadowKey::new(42).unwrap())
    }

    /// Fig. 6 under the oracle: a runtime-boxed value flows through the
    /// stack into an integer load and a movq — both must surface as leaks.
    #[test]
    fn box_leaks_are_observed() {
        let mut a = Asm::new();
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        let store_site = a.here();
        a.movsd(Mem::base_disp(Gpr::RSP, 0), Xmm(0));
        let load_site = a.here();
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 0));
        let movq_site = a.here();
        a.movq_xg(Gpr::RBX, Xmm(0));
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.taint_enable();
        // The "runtime" boxes xmm0 and reclassifies — the taint source.
        m.xmm[0][0] = boxed_bits();
        m.taint_reclassify_xmm(0, 0);
        assert_eq!(m.run(100), Event::Halted);
        let t = m.taint_plane().unwrap();
        assert!(t.sites.contains_key(&load_site), "int load must leak");
        assert!(t.sites.contains_key(&movq_site), "movq must leak");
        assert!(!t.sites.contains_key(&store_site), "stores are not sinks");
        let l = &t.sites[&load_site];
        assert_eq!(l.kind, TaintSinkKind::IntLoad);
        assert_eq!((l.hits, l.boxed_hits), (1, 1));
        assert_eq!(t.sites[&movq_site].kind, TaintSinkKind::MovqLeak);
        // The loaded register is tainted too.
        assert!(t.gpr(Gpr::RAX.0 as usize));
    }

    /// Sites registered as statically trapped never produce leak events.
    #[test]
    fn trapped_sites_are_not_leaks() {
        let mut a = Asm::new();
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Mem::base_disp(Gpr::RSP, 0), Xmm(0));
        let load_site = a.here();
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 0));
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.taint_enable();
        m.taint_install_trapped([load_site]);
        m.xmm[0][0] = boxed_bits();
        m.taint_reclassify_xmm(0, 0);
        assert_eq!(m.run(100), Event::Halted);
        assert!(m.taint_plane().unwrap().sites.is_empty());
    }

    /// Native FP arithmetic clears taint; untainted loads stay silent.
    #[test]
    fn fp_arith_clears_and_clean_loads_are_silent() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        let g = a.global("slot", 8);
        a.movsd(Xmm(1), c);
        a.addsd(Xmm(0), Xmm(1)); // overwrites the box with a real result
        a.movsd(Mem::abs(g as i64), Xmm(0));
        a.load(Gpr::RAX, Mem::abs(g as i64));
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.taint_enable();
        m.xmm[0][0] = 2.5f64.to_bits();
        m.taint_reclassify_xmm(0, 0); // real double: no taint seeded
        assert_eq!(m.run(100), Event::Halted);
        let t = m.taint_plane().unwrap();
        assert!(t.sites.is_empty(), "{:?}", t.sites);
        assert_eq!(t.events_total, 0);
    }

    /// Taint rides gpr→gpr moves, ALU combining, push/pop; xor-self clears.
    #[test]
    fn integer_world_propagation() {
        let mut a = Asm::new();
        a.movq_xg(Gpr::RAX, Xmm(0)); // leak 1: rax tainted
        a.mov_rr(Gpr::RBX, Gpr::RAX);
        a.push(Gpr::RBX);
        a.pop(Gpr::RCX);
        a.alu_rr(AluOp::Add, Gpr::RDX, Gpr::RCX); // rdx |= taint
        a.alu_rr(AluOp::Xor, Gpr::RAX, Gpr::RAX); // idiom: clears
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.taint_enable();
        m.xmm[0][0] = boxed_bits();
        m.taint_reclassify_xmm(0, 0);
        assert_eq!(m.run(100), Event::Halted);
        let t = m.taint_plane().unwrap();
        assert!(t.gpr(Gpr::RCX.0 as usize), "taint survives push/pop");
        assert!(t.gpr(Gpr::RDX.0 as usize), "taint survives alu combine");
        assert!(!t.gpr(Gpr::RAX.0 as usize), "xor-self clears taint");
    }

    /// The plane never perturbs architectural state: cycles, icount and
    /// outputs are bit-identical with the oracle on and off.
    #[test]
    fn oracle_is_observationally_transparent() {
        let build = || {
            let mut a = Asm::new();
            let c1 = a.f64m(0.1);
            let c2 = a.f64m(0.2);
            a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
            a.movsd(Xmm(0), c1);
            a.addsd(Xmm(0), c2);
            a.movsd(Mem::base_disp(Gpr::RSP, 0), Xmm(0));
            a.load(Gpr::RDI, Mem::base_disp(Gpr::RSP, 0));
            a.call_ext(crate::isa::ExtFn::PrintI64);
            a.halt();
            a.finish()
        };
        let mut base = Machine::new(CostModel::r815());
        base.load_program(&build());
        assert_eq!(base.run(1000), Event::Halted);
        let mut traced = Machine::new(CostModel::r815());
        traced.load_program(&build());
        traced.taint_enable();
        assert_eq!(traced.run(1000), Event::Halted);
        assert_eq!(base.cycles, traced.cycles);
        assert_eq!(base.icount, traced.icount);
        assert_eq!(base.output, traced.output);
        assert_eq!(base.gpr, traced.gpr);
    }
}
