//! Cycle cost model: machine profiles and trap-delivery modes.
//!
//! The simulator executes instructions functionally and *accounts* cycles
//! against a profile calibrated to the paper's three evaluation machines
//! (§5.1, §5.3) and to the exception-delivery measurements the paper quotes
//! from \[24\] in Fig. 14:
//!
//! * **R815** — quad 16-core AMD Opteron 6272 @ 2.1 GHz (the paper's main
//!   testbed). Old microarchitecture with notoriously expensive exception
//!   delivery.
//! * **Dell7220** — Intel Xeon E3-1505M v6 (the paper's "7220").
//! * **R730xd** — dual Intel Xeon E5-2695 v3.
//!
//! Delivery modes model §6's overhead-reduction prospects: the prototype's
//! user-level SIGFPE path, a kernel-module FPVM (§6.1), and the ~10-cycle
//! user→user "pipeline interrupt" (§6.2).
//!
//! Where the reproduction performs *real* work (BigFloat emulation, GC
//! scans), the runtime measures host time and converts to cycles at the
//! profile's clock; where the hardware is simulated (traps, kernel), the
//! model charges these constants. EXPERIMENTS.md discusses this split.

use crate::isa::{ExtFn, Inst};

/// How FP exceptions reach FPVM (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// The prototype: hardware exception → kernel → SIGFPE to a user-level
    /// handler (+ sigreturn on the way back).
    #[default]
    UserSignal,
    /// FPVM as a kernel module (§6.1): no kernel→user crossing.
    KernelModule,
    /// Hardware user→user delivery (§6.2 "pipeline interrupt").
    PipelineInterrupt,
}

/// A machine cost profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Profile name.
    pub name: &'static str,
    /// Clock rate, used to convert measured host-nanoseconds into
    /// profile cycles for the real-work components.
    pub clock_ghz: f64,
    /// Microarchitectural cost of raising a precise FP exception and
    /// entering the kernel (+ iret).
    pub hw_exception: u64,
    /// Kernel-side dispatch (exception table, signal setup).
    pub kernel_dispatch: u64,
    /// Kernel→user signal frame construction + `sigreturn`.
    pub user_delivery: u64,
    /// §6.2's projected user→user transfer.
    pub pipeline_interrupt: u64,
    /// Decode-cache miss: full instruction decode (Capstone analogue).
    pub decode_miss: u64,
    /// Decode-cache hit.
    pub decode_hit: u64,
    /// Operand binding (effective-address computation, operand pointers).
    pub bind: u64,
    /// Trap-and-patch: inlined precondition+postcondition checks (§3.2).
    pub patch_check: u64,
    /// Trap-and-patch: direct call into the custom handler.
    pub patch_call: u64,
    /// Fixed emulator dispatch overhead per emulated instruction
    /// (op_map lookup, NaN-box encode, arena cell allocation).
    pub emulate_dispatch: u64,
}

impl CostModel {
    /// The paper's main testbed: Dell R815 (AMD Opteron 6272).
    pub fn r815() -> Self {
        CostModel {
            name: "R815",
            clock_ghz: 2.1,
            hw_exception: 1000,
            kernel_dispatch: 250,
            user_delivery: 12750,
            pipeline_interrupt: 12,
            decode_miss: 2500,
            decode_hit: 45,
            bind: 320,
            patch_check: 18,
            patch_call: 40,
            emulate_dispatch: 700,
        }
    }

    /// Dell Precision 7720 (Xeon E3-1505M v6) — the paper's "7220".
    pub fn dell7220() -> Self {
        CostModel {
            name: "7220",
            clock_ghz: 3.0,
            hw_exception: 600,
            kernel_dispatch: 180,
            user_delivery: 5820,
            pipeline_interrupt: 10,
            decode_miss: 1800,
            decode_hit: 30,
            bind: 220,
            patch_check: 14,
            patch_call: 30,
            emulate_dispatch: 450,
        }
    }

    /// Dell R730xd (dual Xeon E5-2695 v3).
    pub fn r730xd() -> Self {
        CostModel {
            name: "R730xd",
            clock_ghz: 2.3,
            hw_exception: 650,
            kernel_dispatch: 200,
            user_delivery: 6550,
            pipeline_interrupt: 10,
            decode_miss: 2000,
            decode_hit: 34,
            bind: 250,
            patch_check: 15,
            patch_call: 32,
            emulate_dispatch: 500,
        }
    }

    /// All three profiles (the Fig. 12 machine columns).
    pub fn all() -> [CostModel; 3] {
        [Self::r815(), Self::dell7220(), Self::r730xd()]
    }

    /// One-way + return delivery cost of an FP exception/trap to FPVM under
    /// the given mode.
    pub fn delivery(&self, mode: DeliveryMode) -> u64 {
        match mode {
            DeliveryMode::UserSignal => {
                self.hw_exception + self.kernel_dispatch + self.user_delivery
            }
            DeliveryMode::KernelModule => self.hw_exception + self.kernel_dispatch,
            DeliveryMode::PipelineInterrupt => self.pipeline_interrupt,
        }
    }

    /// Split of the delivery cost into (hardware, kernel, user) components
    /// for the Fig. 9 breakdown.
    pub fn delivery_parts(&self, mode: DeliveryMode) -> (u64, u64, u64) {
        match mode {
            DeliveryMode::UserSignal => {
                (self.hw_exception, self.kernel_dispatch, self.user_delivery)
            }
            DeliveryMode::KernelModule => (self.hw_exception, self.kernel_dispatch, 0),
            DeliveryMode::PipelineInterrupt => (self.pipeline_interrupt, 0, 0),
        }
    }

    /// Decode-stage cost: cache hit vs full decode (the runtime's decode
    /// stage charges through this hook rather than picking fields).
    pub fn decode_cost(&self, hit: bool) -> u64 {
        if hit {
            self.decode_hit
        } else {
            self.decode_miss
        }
    }

    /// Correctness-trap dispatch cost: either a direct call (the §5.3
    /// "matter of implementation effort" optimization) or a full trap
    /// delivery under the given mode.
    pub fn correctness_dispatch(&self, as_call: bool, mode: DeliveryMode) -> u64 {
        if as_call {
            self.patch_call
        } else {
            self.delivery(mode)
        }
    }

    /// Trap-and-patch dispatch cost: direct call into the custom handler
    /// plus the inlined pre/postcondition checks (§3.2).
    pub fn patch_dispatch(&self) -> u64 {
        self.patch_call + self.patch_check
    }

    /// Convert measured host nanoseconds into profile cycles.
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as f64 * self.clock_ghz) as u64
    }

    /// Base (non-faulting) execution cost of one instruction, in cycles —
    /// a coarse per-class latency/throughput blend.
    ///
    /// Superblock formation (`crate::block`) snapshots this per entry; the
    /// block cache is keyed on the whole `CostModel` (it's `Copy +
    /// PartialEq`), so editing `Machine::cost` mid-flight invalidates
    /// blocks rather than serving stale costs.
    #[inline]
    pub fn inst_cost(&self, inst: &Inst) -> u64 {
        use Inst::*;
        // Throughput-blended costs: a modern OoO core retires several
        // simple integer ops per cycle, so address arithmetic and moves
        // are charged near their amortized throughput, FP ops near their
        // latency.
        let mem_extra = |xm: &crate::isa::XM| -> u64 {
            if matches!(xm, crate::isa::XM::Mem(_)) {
                2
            } else {
                0
            }
        };
        match inst {
            Nop => 1,
            MovRR { .. } | MovRI { .. } | Lea { .. } => 1,
            MovSd { dst, src } | MovApd { dst, src } => 1 + mem_extra(dst) + mem_extra(src),
            AddSd { src, .. } | SubSd { src, .. } | AddPd { src, .. } | SubPd { src, .. } => {
                3 + mem_extra(src)
            }
            MulSd { src, .. } | MulPd { src, .. } => 5 + mem_extra(src),
            DivSd { src, .. } | DivPd { src, .. } => 20 + mem_extra(src),
            SqrtSd { src, .. } => 27 + mem_extra(src),
            FmaSd { b, .. } => 5 + mem_extra(b),
            MinSd { src, .. } | MaxSd { src, .. } => 3 + mem_extra(src),
            UComISd { b, .. } | ComISd { b, .. } => 2 + mem_extra(b),
            CvtSi2Sd { .. } | CvtTSd2Si { .. } | CvtSd2Ss { .. } | CvtSs2Sd { .. } => 5,
            XorPd { src, .. } | AndPd { src, .. } | OrPd { src, .. } => 1 + mem_extra(src),
            MovQXG { .. } | MovQGX { .. } => 2,
            Load { .. } => 2,
            Store { .. } => 1,
            AluRR { op, .. } | AluRI { op, .. } => match op {
                crate::isa::AluOp::IMul => 3,
                _ => 1,
            },
            DivR { .. } | RemR { .. } => 24,
            CmpRR { .. } | CmpRI { .. } | TestRR { .. } => 1,
            Jmp { .. } | Jcc { .. } => 1,
            Call { .. } | Ret => 2,
            Push { .. } | Pop { .. } => 1,
            CallExt { f } => match f {
                ExtFn::PrintF64 | ExtFn::PrintI64 => 900,
                ExtFn::AllocHeap => 120,
                ExtFn::Exit => 10,
                ExtFn::Pow | ExtFn::Atan2 => 90,
                ExtFn::Fabs | ExtFn::Floor | ExtFn::Ceil => 6,
                _ => 55, // libm transcendental
            },
            // Trap instructions: the dispatch cost is charged by the
            // runtime per delivery mode; base cost covers the fetch only.
            Trap { .. } => 1,
            Halt => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Gpr, Inst, Mem, Xmm, XM};

    #[test]
    fn delivery_ordering_matches_fig14() {
        // Fig. 14: kernel-level delivery is 7–30× cheaper than user-level.
        for m in CostModel::all() {
            let user = m.delivery(DeliveryMode::UserSignal);
            let kernel = m.delivery(DeliveryMode::KernelModule);
            let pipe = m.delivery(DeliveryMode::PipelineInterrupt);
            assert!(user > kernel && kernel > pipe, "{}", m.name);
            let ratio = user as f64 / kernel as f64;
            assert!((1.5..35.0).contains(&ratio), "{}: ratio {ratio}", m.name);
            // §6.2: pipeline interrupt in the ~10-cycle class.
            assert!(pipe <= 100, "{}", m.name);
        }
    }

    #[test]
    fn r815_trap_cost_matches_fig9_scale() {
        // §5.3: per-trap costs on R815 land in 12,000–24,000 cycles once
        // emulation (≈ 100–2200 for 200-bit ops) and bookkeeping join the
        // delivery cost. Delivery + decode-hit + bind + dispatch alone
        // should be roughly 15k.
        let m = CostModel::r815();
        let fixed =
            m.delivery(DeliveryMode::UserSignal) + m.decode_hit + m.bind + m.emulate_dispatch;
        assert!((10_000..20_000).contains(&fixed), "{fixed}");
    }

    #[test]
    fn stage_hooks_match_fields() {
        let m = CostModel::r815();
        assert_eq!(m.decode_cost(true), m.decode_hit);
        assert_eq!(m.decode_cost(false), m.decode_miss);
        assert_eq!(
            m.correctness_dispatch(true, DeliveryMode::UserSignal),
            m.patch_call
        );
        assert_eq!(
            m.correctness_dispatch(false, DeliveryMode::KernelModule),
            m.delivery(DeliveryMode::KernelModule)
        );
        assert_eq!(m.patch_dispatch(), m.patch_call + m.patch_check);
    }

    #[test]
    fn memory_operands_cost_more() {
        let m = CostModel::r815();
        let reg = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        };
        let mem = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Mem(Mem::base_disp(Gpr::RSP, 8)),
        };
        assert!(m.inst_cost(&mem) > m.inst_cost(&reg));
        assert!(
            m.inst_cost(&Inst::DivSd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1))
            }) > m.inst_cost(&reg)
        );
    }
}
