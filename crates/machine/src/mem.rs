//! Flat little-endian guest memory with a fixed segment layout.
//!
//! ```text
//!   0x0000_0000 … 0x0000_0FFF   null guard (any access faults)
//!   0x0000_1000 …               code (.text)
//!   0x0010_0000 …               globals / rodata (.data)
//!   0x0020_0000 …               heap (bump allocated via AllocHeap)
//!   … stack_top                 stack (grows down from the top)
//! ```
//!
//! The garbage collector's conservative scan (§4.1) walks the *writable*
//! segments — data, heap, stack — plus the register file, exactly as the
//! paper's collector "scans all writable program memory for data that
//! appears to be a NaN-box".

/// Base address of the code segment.
pub const CODE_BASE: u64 = 0x1000;
/// Base address of the data (globals) segment.
pub const DATA_BASE: u64 = 0x10_0000;
/// Base address of the heap.
pub const HEAP_BASE: u64 = 0x20_0000;
/// Default total memory size (stack top).
pub const DEFAULT_MEM_SIZE: u64 = 0x80_0000; // 8 MiB

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Access below the guard page boundary (null-ish pointer).
    NullGuard(u64),
    /// Access beyond the end of memory.
    OutOfBounds(u64),
}

/// Guest memory.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    /// End of the code segment (exclusive) — everything in
    /// `[CODE_BASE, code_end)` is executable.
    pub code_end: u64,
    /// Current heap allocation cursor.
    pub heap_brk: u64,
    /// FNV-1a hash of the current code segment, maintained by
    /// [`Memory::load_image`] and [`Memory::patch_code`]. The program's
    /// *identity* for decode/emulate-cache retention: two different
    /// programs of identical length must never share cache entries.
    code_fp: u64,
}

/// FNV-1a over a byte slice (std has no stable public hasher with a
/// documented algorithm; the decode caches only need a deterministic
/// content fingerprint, not cryptographic strength).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Memory {
    /// Create memory of `size` bytes (≥ 4 MiB recommended).
    pub fn new(size: u64) -> Self {
        Memory {
            bytes: vec![0; size as usize],
            code_end: CODE_BASE,
            heap_brk: HEAP_BASE,
            code_fp: fnv1a(&[]),
        }
    }

    /// Total size (== initial stack top).
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, MemFault> {
        if addr < CODE_BASE {
            return Err(MemFault::NullGuard(addr));
        }
        let end = addr.checked_add(len).ok_or(MemFault::OutOfBounds(addr))?;
        if end > self.bytes.len() as u64 {
            return Err(MemFault::OutOfBounds(addr));
        }
        Ok(addr as usize)
    }

    /// Read `len ≤ 8` bytes as a little-endian integer.
    pub fn read_int(&self, addr: u64, len: u64) -> Result<u64, MemFault> {
        let i = self.check(addr, len)?;
        let mut buf = [0u8; 8];
        buf[..len as usize].copy_from_slice(&self.bytes[i..i + len as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Write `len ≤ 8` bytes little-endian.
    pub fn write_int(&mut self, addr: u64, value: u64, len: u64) -> Result<(), MemFault> {
        let i = self.check(addr, len)?;
        self.bytes[i..i + len as usize].copy_from_slice(&value.to_le_bytes()[..len as usize]);
        Ok(())
    }

    /// Read a 64-bit value (one f64 lane).
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        self.read_int(addr, 8)
    }

    /// Write a 64-bit value.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemFault> {
        self.write_int(addr, value, 8)
    }

    /// Read both lanes of a 128-bit value.
    pub fn read_u128(&self, addr: u64) -> Result<[u64; 2], MemFault> {
        Ok([self.read_u64(addr)?, self.read_u64(addr + 8)?])
    }

    /// Write both lanes of a 128-bit value.
    pub fn write_u128(&mut self, addr: u64, v: [u64; 2]) -> Result<(), MemFault> {
        self.write_u64(addr, v[0])?;
        self.write_u64(addr + 8, v[1])
    }

    /// Raw byte slice access (for the decoder; code segment only).
    pub fn code_bytes(&self) -> &[u8] {
        &self.bytes[CODE_BASE as usize..self.code_end as usize]
    }

    /// Load a program image: code at [`CODE_BASE`], data at [`DATA_BASE`].
    ///
    /// A (re)load is hermetic: everything above the null guard is zeroed
    /// first, so a reused `Memory` (fleet machine recycling) is
    /// indistinguishable from a fresh allocation — stale heap/stack bytes
    /// from a previous guest must never be readable by, or conservatively
    /// GC-scanned under, the next one.
    pub fn load_image(&mut self, code: &[u8], data: &[u8]) {
        assert!(
            CODE_BASE + (code.len() as u64) <= DATA_BASE,
            "code segment too large"
        );
        assert!(
            DATA_BASE + (data.len() as u64) <= HEAP_BASE,
            "data segment too large"
        );
        self.bytes[CODE_BASE as usize..].fill(0);
        self.bytes[CODE_BASE as usize..CODE_BASE as usize + code.len()].copy_from_slice(code);
        self.code_end = CODE_BASE + code.len() as u64;
        self.bytes[DATA_BASE as usize..DATA_BASE as usize + data.len()].copy_from_slice(data);
        self.heap_brk = HEAP_BASE;
        self.code_fp = fnv1a(code);
    }

    /// Content fingerprint of the current code segment (cached; updated on
    /// [`Memory::load_image`] and [`Memory::patch_code`], so reading it is
    /// O(1) per run).
    pub fn code_fingerprint(&self) -> u64 {
        self.code_fp
    }

    /// Patch code bytes in place (used by the static patcher and the
    /// trap-and-patch engine). The caller must invalidate any decode caches.
    pub fn patch_code(&mut self, addr: u64, bytes: &[u8]) {
        assert!(addr >= CODE_BASE && addr + (bytes.len() as u64) <= self.code_end);
        self.bytes[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
        self.code_fp = fnv1a(self.code_bytes());
    }

    /// Bump-allocate `size` bytes on the heap (16-byte aligned). Returns the
    /// address, or `None` if the heap would collide with the stack region.
    pub fn alloc_heap(&mut self, size: u64) -> Option<u64> {
        let addr = (self.heap_brk + 15) & !15;
        let end = addr.checked_add(size)?;
        // Leave at least 1 MiB of stack headroom.
        if end + 0x10_0000 > self.size() {
            return None;
        }
        self.heap_brk = end;
        Some(addr)
    }

    /// The writable address ranges for the GC's conservative scan:
    /// (data+heap used so far, stack from `rsp` to the top).
    pub fn writable_ranges(&self, rsp: u64) -> [(u64, u64); 2] {
        let stack_lo = rsp.clamp(CODE_BASE, self.size());
        [(DATA_BASE, self.heap_brk), (stack_lo, self.size())]
    }

    /// Direct slice over a range (for the GC scan; panics on bad range —
    /// callers pass ranges from [`Memory::writable_ranges`]).
    pub fn slice(&self, lo: u64, hi: u64) -> &[u8] {
        &self.bytes[lo as usize..hi as usize]
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new(DEFAULT_MEM_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::default();
        m.write_u64(DATA_BASE, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(m.read_u64(DATA_BASE).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        // Partial widths.
        m.write_int(DATA_BASE + 16, 0x1234_5678, 4).unwrap();
        assert_eq!(m.read_int(DATA_BASE + 16, 4).unwrap(), 0x1234_5678);
        assert_eq!(m.read_int(DATA_BASE + 16, 2).unwrap(), 0x5678);
        assert_eq!(m.read_int(DATA_BASE + 17, 1).unwrap(), 0x56);
    }

    #[test]
    fn null_guard_faults() {
        let mut m = Memory::default();
        assert_eq!(m.read_u64(0), Err(MemFault::NullGuard(0)));
        assert_eq!(m.read_u64(0xFF8), Err(MemFault::NullGuard(0xFF8)));
        assert_eq!(m.write_u64(8, 1), Err(MemFault::NullGuard(8)));
        // Out of bounds.
        let top = m.size();
        assert_eq!(m.read_u64(top - 4), Err(MemFault::OutOfBounds(top - 4)));
        assert!(m.read_u64(top - 8).is_ok());
        assert_eq!(m.read_u64(u64::MAX), Err(MemFault::OutOfBounds(u64::MAX)));
    }

    #[test]
    fn image_and_patch() {
        let mut m = Memory::default();
        m.load_image(&[1, 2, 3, 4], &[9, 9]);
        assert_eq!(m.code_end, CODE_BASE + 4);
        assert_eq!(m.read_int(CODE_BASE, 4).unwrap(), 0x04030201);
        assert_eq!(m.read_int(DATA_BASE, 2).unwrap(), 0x0909);
        m.patch_code(CODE_BASE + 1, &[7, 7]);
        assert_eq!(m.read_int(CODE_BASE, 4).unwrap(), 0x04070701);
    }

    #[test]
    fn heap_alloc() {
        let mut m = Memory::default();
        let a = m.alloc_heap(100).unwrap();
        assert_eq!(a % 16, 0);
        assert!(a >= HEAP_BASE);
        let b = m.alloc_heap(100).unwrap();
        assert!(b >= a + 100);
        // Exhaustion.
        assert!(m.alloc_heap(1 << 40).is_none());
    }

    #[test]
    fn writable_ranges_cover_data_heap_stack() {
        let mut m = Memory::default();
        m.alloc_heap(64).unwrap();
        let rsp = m.size() - 256;
        let [r1, r2] = m.writable_ranges(rsp);
        assert_eq!(r1.0, DATA_BASE);
        assert!(r1.1 >= HEAP_BASE);
        assert_eq!(r2, (rsp, m.size()));
    }
}
