//! The machine executor: a functional + cycle-accounted simulator of the
//! ISA with precise, maskable floating point exceptions.
//!
//! The executor implements the hardware contract FPVM's trap-and-emulate
//! engine relies on (§4.1):
//!
//! * FP arithmetic computes IEEE results *and* exception flags (via
//!   [`fpvm_arith::softfp`]); flags are OR-ed into the sticky `%mxcsr`
//!   condition codes.
//! * If any raised flag is **unmasked**, the instruction faults *before
//!   retirement*: no result is written, `rip` still points at the faulting
//!   instruction, and the run loop surfaces an [`Event::FpException`] — the
//!   analogue of #XM → kernel → SIGFPE.
//! * Bitwise FP instructions, integer loads, and `movq` never fault — the
//!   holes §4.2's static analysis exists to patch.
//! * `Trap` instructions surface [`Event::SwTrap`] (correctness traps and
//!   patch calls), and external calls surface [`Event::ExtCall`] when the
//!   runtime has hooked them (the LD_PRELOAD-shim analogue).

use crate::cost::CostModel;
use crate::encode::{decode, DecodeError, MAX_INST_LEN};
use crate::isa::*;
use crate::mem::{MemFault, Memory, CODE_BASE};
use crate::mxcsr::{Mxcsr, RFlags};
use crate::taint::TaintPlane;
use crate::Program;
use fpvm_arith::{softfp, FpFlags};

/// A recorded output event (the guest's stdout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputEvent {
    /// printf("%.17g\n", x) — records the raw bits for exact comparison.
    F64(u64),
    /// printf("%ld\n", x).
    I64(i64),
}

impl OutputEvent {
    /// Render as the guest's stdout line.
    pub fn render(&self) -> String {
        match self {
            OutputEvent::F64(bits) => format!("{:?}", f64::from_bits(*bits)),
            OutputEvent::I64(v) => format!("{v}"),
        }
    }
}

/// A fatal execution fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Memory access fault.
    Mem(MemFault, u64),
    /// Undecodable instruction.
    Decode(DecodeError, u64),
    /// `rip` left the code segment.
    BadRip(u64),
    /// Instruction budget exhausted (runaway loop guard).
    Budget,
    /// Unhandled software trap (no runtime attached).
    UnhandledTrap(u64),
}

/// Why the run loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `Halt` executed.
    Halted,
    /// `Exit` external call (with code).
    Exited(i64),
    /// An unmasked FP exception fired. `rip` points at the faulting
    /// instruction, which has *not* retired. `flags` are the conditions the
    /// instruction raised (already OR-ed into mxcsr).
    FpException {
        /// Address of the faulting instruction.
        rip: u64,
        /// The exception conditions raised.
        flags: FpFlags,
    },
    /// A `Trap` instruction was reached (correctness trap or patch call).
    SwTrap {
        /// Trap kind.
        kind: TrapKind,
        /// Side-table index.
        id: u16,
        /// Address of the trap instruction.
        rip: u64,
    },
    /// An external call site was reached while hooked; the instruction has
    /// *not* executed. The runtime interposes or forwards it.
    ExtCall {
        /// The external function.
        f: ExtFn,
        /// Address of the call instruction.
        rip: u64,
        /// Address of the following instruction.
        next_rip: u64,
    },
    /// One instruction retired in single-step (TF) mode.
    SingleStepped,
    /// §6.2 hardware extension: a NaN-box pattern was observed by a
    /// non-FP instruction while [`Machine::nan_hole_traps`] is enabled
    /// (trap-on-NaN-load + NaN checks on bitwise FP ops). The instruction
    /// has *not* retired.
    NanHole {
        /// Address of the instruction that observed the pattern.
        rip: u64,
    },
    /// Fatal fault.
    Fault(Fault),
}

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// General-purpose registers.
    pub gpr: [u64; 16],
    /// XMM registers (two 64-bit lanes each).
    pub xmm: [[u64; 2]; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: RFlags,
    /// SSE control/status register.
    pub mxcsr: Mxcsr,
    /// Guest memory.
    pub mem: Memory,
    /// Cost model for cycle accounting.
    pub cost: CostModel,
    /// Accumulated cycles (base execution + runtime charges).
    pub cycles: u64,
    /// Retired instruction count.
    pub icount: u64,
    /// Retired *floating point arithmetic* instruction count.
    pub fp_icount: u64,
    /// Guest output.
    pub output: Vec<OutputEvent>,
    /// Deliver `ExtCall` events instead of executing externals natively.
    pub hook_ext: bool,
    /// Single-step (TF) mode: return after each retired instruction.
    pub single_step: bool,
    /// §6.2 hardware extension: integer loads, `movq r64←xmm` and bitwise
    /// FP ops fault when they observe a signaling-NaN pattern, making the
    /// FP ISA fully virtualizable without static analysis.
    pub nan_hole_traps: bool,
    /// Dispatch superblocks of straight-line code on the hot path (see
    /// [`crate::block`]). On by default; accounting is bit-identical
    /// on/off — the block engine may only change host wall time.
    pub superblocks: bool,
    /// Superblock formation cap (see [`Machine::set_superblocks`]).
    pub(crate) sb_cap: u32,
    /// The superblock cache (offset-keyed, fingerprint-guarded).
    pub(crate) blocks: crate::block::BlockCache,
    /// Pre-decoded instruction cache, indexed by code offset (this is the
    /// *hardware* decoder — free; FPVM's software decode cache is separate).
    /// Allocated lazily on first fetch so machines that never run cost
    /// nothing; retained (capacity and all) across `load_program`.
    predecoded: Vec<Option<(Inst, u8)>>,
    /// Shadow taint plane (the audit oracle). `None` — the default — means
    /// the hot path is completely untouched.
    taint: Option<Box<TaintPlane>>,
}

impl Machine {
    /// New machine with the given cost profile and default memory.
    pub fn new(cost: CostModel) -> Self {
        Machine {
            gpr: [0; 16],
            xmm: [[0; 2]; 16],
            rip: CODE_BASE,
            rflags: RFlags::default(),
            mxcsr: Mxcsr::default(),
            mem: Memory::default(),
            cost,
            cycles: 0,
            icount: 0,
            fp_icount: 0,
            output: Vec::new(),
            hook_ext: false,
            single_step: false,
            nan_hole_traps: false,
            superblocks: true,
            sb_cap: crate::block::DEFAULT_BLOCK_CAP,
            blocks: crate::block::BlockCache::default(),
            predecoded: Vec::new(),
            taint: None,
        }
    }

    /// Load a program image and reset execution state.
    pub fn load_program(&mut self, p: &Program) {
        self.mem.load_image(&p.code, &p.data);
        self.rip = p.entry;
        self.gpr = [0; 16];
        self.gpr[Gpr::RSP.0 as usize] = self.mem.size() - 64;
        self.xmm = [[0; 2]; 16];
        self.rflags = RFlags::default();
        self.mxcsr = Mxcsr::default();
        self.cycles = 0;
        self.icount = 0;
        self.fp_icount = 0;
        self.output.clear();
        // Keep the allocation (fleet reuse); fetch re-grows it lazily.
        self.predecoded.clear();
        if self.taint.is_some() {
            self.taint = Some(Box::default());
        }
    }

    /// Enable (or reset) the shadow taint plane. Costs nothing when never
    /// called: the plane is `None` by default and every taint hook is a
    /// no-op.
    pub fn taint_enable(&mut self) {
        self.taint = Some(Box::default());
    }

    /// Drop the taint plane entirely (back to the zero-cost default).
    /// Used by machine-reusing drivers (the fleet) to guarantee a
    /// recycled machine doesn't inherit a previous job's plane.
    pub fn taint_disable(&mut self) {
        self.taint = None;
    }

    /// The taint plane, if enabled.
    pub fn taint_plane(&self) -> Option<&TaintPlane> {
        self.taint.as_deref()
    }

    /// Tell the plane which sites the patcher trapped: taint consumption
    /// there is handled by the correctness-trap machinery and is not a
    /// leak. No-op when the plane is disabled.
    pub fn taint_install_trapped(&mut self, addrs: impl IntoIterator<Item = u64>) {
        if let Some(t) = self.taint.as_deref_mut() {
            t.trapped.extend(addrs);
        }
    }

    /// Reclassify XMM `r` lane `l` from its current bits (called by the
    /// runtime after it writes a register — this is how boxed results
    /// *enter* the plane). No-op when disabled.
    pub fn taint_reclassify_xmm(&mut self, r: usize, l: usize) {
        let boxed = fpvm_nanbox::is_boxed(self.xmm[r][l]);
        if let Some(t) = self.taint.as_deref_mut() {
            t.set_xmm(r, l, boxed);
        }
    }

    /// Reclassify GPR `r` from its current bits. No-op when disabled.
    pub fn taint_reclassify_gpr(&mut self, r: usize) {
        let boxed = fpvm_nanbox::is_boxed(self.gpr[r]);
        if let Some(t) = self.taint.as_deref_mut() {
            t.set_gpr(r, boxed);
        }
    }

    /// Reclassify the 8-byte word containing `addr` from memory contents.
    /// No-op when disabled.
    pub fn taint_reclassify_mem(&mut self, addr: u64) {
        let boxed = self
            .mem
            .read_u64(addr & !7)
            .map(fpvm_nanbox::is_boxed)
            .unwrap_or(false);
        if let Some(t) = self.taint.as_deref_mut() {
            t.set_mem_word(addr, boxed);
        }
    }

    /// Patch code bytes and invalidate every predecode slot and superblock
    /// that overlaps the patched range. Instructions are variable length,
    /// so a decode *starting before* the range can span into it — the
    /// predecode sweep rewinds by [`MAX_INST_LEN`] and drops exactly the
    /// slots whose decoded span reaches the patch.
    pub fn patch_code(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.patch_code(addr, bytes);
        let off = (addr - CODE_BASE) as usize;
        let lo = off.saturating_sub(MAX_INST_LEN - 1);
        let hi = (off + bytes.len()).min(self.predecoded.len());
        for s in lo..hi.min(self.predecoded.len()) {
            let stale = match &self.predecoded[s] {
                // Inside the range: bytes changed under the decode.
                _ if s >= off => true,
                // Before the range: stale only if the span reaches it.
                Some((_, len)) => s + *len as usize > off,
                None => false,
            };
            if stale {
                self.predecoded[s] = None;
            }
        }
        self.blocks
            .note_patch(off, bytes.len(), self.mem.code_fingerprint());
    }

    /// Charge extra cycles (used by the runtime for delivery/handling).
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Content fingerprint of the loaded code segment (see
    /// [`crate::Memory::code_fingerprint`]).
    pub fn code_fingerprint(&self) -> u64 {
        self.mem.code_fingerprint()
    }

    /// Effective address of a memory operand.
    pub fn ea(&self, m: &Mem) -> u64 {
        let base = m.base.map_or(0, |r| self.gpr[r.0 as usize]);
        let index = m.index.map_or(0, |r| {
            self.gpr[r.0 as usize].wrapping_mul(u64::from(m.scale))
        });
        base.wrapping_add(index).wrapping_add(m.disp as u64)
    }

    /// Read a 64-bit FP operand (lane 0 of a register, or memory).
    pub fn read_xm64(&self, xm: &XM) -> Result<u64, MemFault> {
        match xm {
            XM::Reg(x) => Ok(self.xmm[x.0 as usize][0]),
            XM::Mem(m) => self.mem.read_u64(self.ea(m)),
        }
    }

    /// Read both lanes of an FP operand.
    pub fn read_xm128(&self, xm: &XM) -> Result<[u64; 2], MemFault> {
        match xm {
            XM::Reg(x) => Ok(self.xmm[x.0 as usize]),
            XM::Mem(m) => self.mem.read_u128(self.ea(m)),
        }
    }

    /// Fetch and decode the instruction at `rip` (hardware decode — free).
    pub fn fetch(&mut self, rip: u64) -> Result<(Inst, u8), Fault> {
        if rip < CODE_BASE || rip >= self.mem.code_end {
            return Err(Fault::BadRip(rip));
        }
        let off = (rip - CODE_BASE) as usize;
        if self.predecoded.len() <= off {
            // Lazy allocation: machines that never run (fleet spares,
            // clones held for inspection) pay nothing for this table.
            self.predecoded.resize(self.mem.code_bytes().len(), None);
        }
        let slot = &mut self.predecoded[off];
        if let Some(hit) = slot {
            return Ok(*hit);
        }
        match decode(self.mem.code_bytes(), off) {
            Ok((inst, len)) => {
                *slot = Some((inst, len as u8));
                Ok((inst, len as u8))
            }
            Err(e) => Err(Fault::Decode(e, rip)),
        }
    }

    /// Run until an event occurs (fault, halt, trap, hooked ext call) or
    /// `budget` instructions retire.
    ///
    /// When [`Machine::superblocks`] is enabled (the default) this
    /// dispatches whole superblocks on the hot path (see [`crate::block`]);
    /// single-step mode and the taint plane demand per-instruction
    /// fidelity, so they fall back to the stepped loop. Either way the
    /// observable result — events, `rip`, all accounting — is identical.
    pub fn run(&mut self, budget: u64) -> Event {
        if self.superblocks && !self.single_step && self.taint.is_none() {
            return self.run_superblocks(budget);
        }
        self.run_stepped(budget)
    }

    /// The per-instruction run loop (the reference semantics superblock
    /// dispatch is pinned against).
    fn run_stepped(&mut self, budget: u64) -> Event {
        let target = self.icount.saturating_add(budget);
        loop {
            if self.icount >= target {
                return Event::Fault(Fault::Budget);
            }
            match self.step() {
                None => {
                    if self.single_step {
                        return Event::SingleStepped;
                    }
                }
                Some(ev) => return ev,
            }
        }
    }

    /// Execute one instruction. Returns `None` if it retired without
    /// incident, `Some(event)` otherwise.
    pub fn step(&mut self) -> Option<Event> {
        let rip = self.rip;
        let (inst, len) = match self.fetch(rip) {
            Ok(v) => v,
            Err(f) => return Some(Event::Fault(f)),
        };
        let next = rip + u64::from(len);
        self.cycles += self.cost.inst_cost(&inst);
        match self.exec(&inst, rip, next) {
            ExecResult::Retired => {
                self.icount += 1;
                if inst.is_fp_arith() {
                    self.fp_icount += 1;
                }
                None
            }
            ExecResult::Event(ev) => Some(ev),
        }
    }

    /// Execute a specific instruction (not fetched from `rip`) with all FP
    /// exceptions temporarily masked, then set `rip = next_rip`. Used by
    /// the runtime to re-execute demoted instructions after a correctness
    /// trap (single-instruction-step, §4.2) and by trap-and-patch handlers.
    /// Returns the flags the instruction raised (the postcondition check).
    pub fn exec_masked(&mut self, inst: &Inst, next_rip: u64) -> Result<FpFlags, Event> {
        let saved_masks = self.mxcsr.masks();
        let saved_flags = self.mxcsr.flags();
        let saved_nan_traps = self.nan_hole_traps;
        self.nan_hole_traps = false;
        // The runtime re-executes originals it demoted; any taint they
        // consume is already handled — suppress leak events, but keep
        // propagating taint.
        let saved_suppress = self.taint.as_deref_mut().map(|t| {
            let s = t.suppress;
            t.suppress = true;
            s
        });
        self.mxcsr.mask_all();
        self.mxcsr.clear_flags();
        self.cycles += self.cost.inst_cost(inst);
        let r = self.exec(inst, self.rip, next_rip);
        let raised = self.mxcsr.flags();
        self.nan_hole_traps = saved_nan_traps;
        if let (Some(t), Some(s)) = (self.taint.as_deref_mut(), saved_suppress) {
            t.suppress = s;
        }
        self.mxcsr.set_masks(saved_masks);
        self.mxcsr.clear_flags();
        self.mxcsr.raise(saved_flags);
        match r {
            ExecResult::Retired => {
                self.icount += 1;
                if inst.is_fp_arith() {
                    self.fp_icount += 1;
                }
                Ok(raised)
            }
            ExecResult::Event(ev) => Err(ev),
        }
    }

    /// Execute an external function natively (host libm / stdio / services).
    /// Returns `Some(event)` only for `Exit`.
    pub fn exec_ext_native(&mut self, f: ExtFn) -> Option<Event> {
        let x0 = f64::from_bits(self.xmm[0][0]);
        let x1 = f64::from_bits(self.xmm[1][0]);
        let set0 = |m: &mut Machine, v: f64| m.xmm[0][0] = v.to_bits();
        match f {
            ExtFn::Sin => set0(self, x0.sin()),
            ExtFn::Cos => set0(self, x0.cos()),
            ExtFn::Tan => set0(self, x0.tan()),
            ExtFn::Asin => set0(self, x0.asin()),
            ExtFn::Acos => set0(self, x0.acos()),
            ExtFn::Atan => set0(self, x0.atan()),
            ExtFn::Atan2 => set0(self, x0.atan2(x1)),
            ExtFn::Exp => set0(self, x0.exp()),
            ExtFn::Log => set0(self, x0.ln()),
            ExtFn::Log10 => set0(self, x0.log10()),
            ExtFn::Pow => set0(self, x0.powf(x1)),
            ExtFn::Floor => set0(self, x0.floor()),
            ExtFn::Ceil => set0(self, x0.ceil()),
            ExtFn::Fabs => {
                // Real libm fabs is a bit operation — it clears the sign bit
                // of whatever pattern it is handed, NaN-box or not.
                self.xmm[0][0] &= !fpvm_nanbox::F64_SIGN_BIT;
            }
            ExtFn::PrintF64 => self.output.push(OutputEvent::F64(self.xmm[0][0])),
            ExtFn::PrintI64 => self
                .output
                .push(OutputEvent::I64(self.gpr[Gpr::RDI.0 as usize] as i64)),
            ExtFn::AllocHeap => {
                let size = self.gpr[Gpr::RDI.0 as usize];
                self.gpr[Gpr::RAX.0 as usize] = self.mem.alloc_heap(size).unwrap_or(0);
            }
            ExtFn::Exit => {
                return Some(Event::Exited(self.gpr[Gpr::RDI.0 as usize] as i64));
            }
        }
        if let Some(t) = self.taint.as_deref_mut() {
            t.apply_ext(f);
        }
        None
    }

    fn exec(&mut self, inst: &Inst, rip: u64, next: u64) -> ExecResult {
        if self.taint.is_none() {
            return self.exec_inner(inst, rip, next);
        }
        let pre = crate::taint::PreState::capture(self, inst);
        let r = self.exec_inner(inst, rip, next);
        if matches!(r, ExecResult::Retired) {
            let mut t = self.taint.take().expect("taint plane present");
            t.step(self, inst, rip, &pre);
            self.taint = Some(t);
        }
        r
    }

    pub(crate) fn exec_inner(&mut self, inst: &Inst, rip: u64, next: u64) -> ExecResult {
        use Inst::*;
        macro_rules! mem_try {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(f) => return ExecResult::Event(Event::Fault(Fault::Mem(f, rip))),
                }
            };
        }
        match inst {
            Nop => {}
            Halt => return ExecResult::Event(Event::Halted),
            Trap { kind, id } => {
                return ExecResult::Event(Event::SwTrap {
                    kind: *kind,
                    id: *id,
                    rip,
                });
            }
            MovSd { dst, src } => {
                let v = mem_try!(self.read_xm64(src));
                match dst {
                    XM::Reg(x) => {
                        let lane = &mut self.xmm[x.0 as usize];
                        lane[0] = v;
                        // x64: movsd xmm ← mem zeroes the upper lane;
                        // xmm ← xmm preserves it.
                        if matches!(src, XM::Mem(_)) {
                            lane[1] = 0;
                        }
                    }
                    XM::Mem(m) => mem_try!(self.mem.write_u64(self.ea(m), v)),
                }
            }
            MovApd { dst, src } => {
                let v = mem_try!(self.read_xm128(src));
                match dst {
                    XM::Reg(x) => self.xmm[x.0 as usize] = v,
                    XM::Mem(m) => mem_try!(self.mem.write_u128(self.ea(m), v)),
                }
            }
            AddSd { dst, src } => return self.fp_bin(softfp::add, *dst, src, rip, next),
            SubSd { dst, src } => return self.fp_bin(softfp::sub, *dst, src, rip, next),
            MulSd { dst, src } => return self.fp_bin(softfp::mul, *dst, src, rip, next),
            DivSd { dst, src } => return self.fp_bin(softfp::div, *dst, src, rip, next),
            MinSd { dst, src } => return self.fp_bin(softfp::min, *dst, src, rip, next),
            MaxSd { dst, src } => return self.fp_bin(softfp::max, *dst, src, rip, next),
            SqrtSd { dst, src } => {
                let b = match self.read_xm64(src) {
                    Ok(v) => v,
                    Err(f) => return ExecResult::Event(Event::Fault(Fault::Mem(f, rip))),
                };
                let (v, flags) = softfp::sqrt(f64::from_bits(b));
                return self.fp_retire(*dst, v.to_bits(), flags, rip, next);
            }
            FmaSd { dst, a, b } => {
                let va = f64::from_bits(self.xmm[dst.0 as usize][0]);
                let vb = f64::from_bits(self.xmm[a.0 as usize][0]);
                let vc = match self.read_xm64(b) {
                    Ok(v) => f64::from_bits(v),
                    Err(f) => return ExecResult::Event(Event::Fault(Fault::Mem(f, rip))),
                };
                let (v, flags) = softfp::fma(va, vb, vc);
                return self.fp_retire(*dst, v.to_bits(), flags, rip, next);
            }
            AddPd { dst, src } => return self.fp_packed(softfp::add, *dst, src, rip, next),
            SubPd { dst, src } => return self.fp_packed(softfp::sub, *dst, src, rip, next),
            MulPd { dst, src } => return self.fp_packed(softfp::mul, *dst, src, rip, next),
            DivPd { dst, src } => return self.fp_packed(softfp::div, *dst, src, rip, next),
            UComISd { a, b } | ComISd { a, b } => {
                let va = f64::from_bits(self.xmm[a.0 as usize][0]);
                let vb = match self.read_xm64(b) {
                    Ok(v) => f64::from_bits(v),
                    Err(f) => return ExecResult::Event(Event::Fault(Fault::Mem(f, rip))),
                };
                let (r, flags) = if matches!(inst, UComISd { .. }) {
                    softfp::ucomi(va, vb)
                } else {
                    softfp::comi(va, vb)
                };
                self.mxcsr.raise(flags);
                if !self.mxcsr.unmasked(flags).is_empty() {
                    return ExecResult::Event(Event::FpException { rip, flags });
                }
                self.rflags.set_fp_compare(r);
                self.rip = next;
            }
            CvtSi2Sd { dst, src, w } => {
                let raw = match src {
                    RM::Reg(r) => self.gpr[r.0 as usize],
                    RM::Mem(m) => mem_try!(self.mem.read_int(self.ea(m), w.bytes())),
                };
                let (v, flags) = match w {
                    Width::W32 => softfp::cvt_i32_to_f64(raw as u32 as i32),
                    _ => softfp::cvt_i64_to_f64(raw as i64),
                };
                return self.fp_retire(*dst, v.to_bits(), flags, rip, next);
            }
            CvtTSd2Si { dst, src, w } => {
                let b = match self.read_xm64(src) {
                    Ok(v) => f64::from_bits(v),
                    Err(f) => return ExecResult::Event(Event::Fault(Fault::Mem(f, rip))),
                };
                let (v, flags) = match w {
                    Width::W32 => {
                        let (v, f) = softfp::cvt_f64_to_i32(b);
                        (v as u32 as u64, f)
                    }
                    _ => {
                        let (v, f) = softfp::cvt_f64_to_i64(b);
                        (v as u64, f)
                    }
                };
                self.mxcsr.raise(flags);
                if !self.mxcsr.unmasked(flags).is_empty() {
                    return ExecResult::Event(Event::FpException { rip, flags });
                }
                self.gpr[dst.0 as usize] = v;
                self.rip = next;
            }
            CvtSd2Ss { dst, src } => {
                let b = match self.read_xm64(src) {
                    Ok(v) => f64::from_bits(v),
                    Err(f) => return ExecResult::Event(Event::Fault(Fault::Mem(f, rip))),
                };
                let (v, flags) = softfp::cvt_f64_to_f32(b);
                self.mxcsr.raise(flags);
                if !self.mxcsr.unmasked(flags).is_empty() {
                    return ExecResult::Event(Event::FpException { rip, flags });
                }
                let lane = &mut self.xmm[dst.0 as usize][0];
                *lane = (*lane & !0xFFFF_FFFF) | u64::from(v.to_bits());
                self.rip = next;
            }
            CvtSs2Sd { dst, src } => {
                let b = match self.read_xm64(src) {
                    Ok(v) => v,
                    Err(f) => return ExecResult::Event(Event::Fault(Fault::Mem(f, rip))),
                };
                let (v, flags) = softfp::cvt_f32_to_f64(f32::from_bits(b as u32));
                return self.fp_retire(*dst, v.to_bits(), flags, rip, next);
            }
            // Bitwise FP: execute blindly on the bit patterns — NO exception
            // check. This is the virtualization hole.
            XorPd { dst, src } => {
                let v = mem_try!(self.read_xm128(src));
                if self.nan_hole_traps {
                    let d = &self.xmm[dst.0 as usize];
                    if [d[0], d[1], v[0], v[1]]
                        .iter()
                        .any(|&x| fpvm_nanbox::is_boxed(x))
                    {
                        return ExecResult::Event(Event::NanHole { rip });
                    }
                }
                let d = &mut self.xmm[dst.0 as usize];
                d[0] ^= v[0];
                d[1] ^= v[1];
            }
            AndPd { dst, src } => {
                let v = mem_try!(self.read_xm128(src));
                if self.nan_hole_traps {
                    let d = &self.xmm[dst.0 as usize];
                    if [d[0], d[1], v[0], v[1]]
                        .iter()
                        .any(|&x| fpvm_nanbox::is_boxed(x))
                    {
                        return ExecResult::Event(Event::NanHole { rip });
                    }
                }
                let d = &mut self.xmm[dst.0 as usize];
                d[0] &= v[0];
                d[1] &= v[1];
            }
            OrPd { dst, src } => {
                let v = mem_try!(self.read_xm128(src));
                if self.nan_hole_traps {
                    let d = &self.xmm[dst.0 as usize];
                    if [d[0], d[1], v[0], v[1]]
                        .iter()
                        .any(|&x| fpvm_nanbox::is_boxed(x))
                    {
                        return ExecResult::Event(Event::NanHole { rip });
                    }
                }
                let d = &mut self.xmm[dst.0 as usize];
                d[0] |= v[0];
                d[1] |= v[1];
            }
            MovQXG { dst, src } => {
                let v = self.xmm[src.0 as usize][0];
                if self.nan_hole_traps && fpvm_nanbox::is_boxed(v) {
                    return ExecResult::Event(Event::NanHole { rip });
                }
                self.gpr[dst.0 as usize] = v;
            }
            MovQGX { dst, src } => {
                self.xmm[dst.0 as usize][0] = self.gpr[src.0 as usize];
                self.xmm[dst.0 as usize][1] = 0;
            }
            MovRR { dst, src } => self.gpr[dst.0 as usize] = self.gpr[src.0 as usize],
            MovRI { dst, imm } => self.gpr[dst.0 as usize] = *imm as u64,
            Load { dst, addr, w } => {
                let v = mem_try!(self.mem.read_int(self.ea(addr), w.bytes()));
                // §6.2 "trap on NaN-load": a 64-bit integer load of a
                // signaling-NaN pattern faults before retirement.
                if self.nan_hole_traps && matches!(w, Width::W64) && fpvm_nanbox::is_boxed(v) {
                    return ExecResult::Event(Event::NanHole { rip });
                }
                self.gpr[dst.0 as usize] = v;
            }
            Store { addr, src, w } => {
                mem_try!(self
                    .mem
                    .write_int(self.ea(addr), self.gpr[src.0 as usize], w.bytes()));
            }
            Lea { dst, addr } => self.gpr[dst.0 as usize] = self.ea(addr),
            AluRR { op, dst, src } => {
                let b = self.gpr[src.0 as usize];
                self.alu(*op, *dst, b);
            }
            AluRI { op, dst, imm } => self.alu(*op, *dst, *imm as u64),
            DivR { dst, src } => {
                let b = self.gpr[src.0 as usize] as i64;
                let a = self.gpr[dst.0 as usize] as i64;
                // Guest #DE modeled as a fault (integer divide-by-zero is a
                // kernel matter, not FPVM's — §6.2).
                if b == 0 {
                    return ExecResult::Event(Event::Fault(Fault::Mem(
                        MemFault::NullGuard(0),
                        rip,
                    )));
                }
                self.gpr[dst.0 as usize] = a.wrapping_div(b) as u64;
            }
            RemR { dst, src } => {
                let b = self.gpr[src.0 as usize] as i64;
                let a = self.gpr[dst.0 as usize] as i64;
                if b == 0 {
                    return ExecResult::Event(Event::Fault(Fault::Mem(
                        MemFault::NullGuard(0),
                        rip,
                    )));
                }
                self.gpr[dst.0 as usize] = a.wrapping_rem(b) as u64;
            }
            CmpRR { a, b } => {
                self.rflags
                    .set_int_compare(self.gpr[a.0 as usize], self.gpr[b.0 as usize]);
            }
            CmpRI { a, imm } => {
                self.rflags
                    .set_int_compare(self.gpr[a.0 as usize], *imm as u64);
            }
            TestRR { a, b } => {
                self.rflags
                    .set_logic(self.gpr[a.0 as usize] & self.gpr[b.0 as usize]);
            }
            Jmp { rel } => {
                self.rip = next.wrapping_add(i64::from(*rel) as u64);
                return self.retired_jump();
            }
            Jcc { cond, rel } => {
                if self.rflags.cond(*cond) {
                    self.cycles += 1; // taken-branch bubble
                    self.rip = next.wrapping_add(i64::from(*rel) as u64);
                } else {
                    self.rip = next;
                }
                return self.retired_jump();
            }
            Call { rel } => {
                let rsp = self.gpr[Gpr::RSP.0 as usize].wrapping_sub(8);
                mem_try!(self.mem.write_u64(rsp, next));
                self.gpr[Gpr::RSP.0 as usize] = rsp;
                self.rip = next.wrapping_add(i64::from(*rel) as u64);
                return self.retired_jump();
            }
            CallExt { f } => {
                if self.hook_ext {
                    return ExecResult::Event(Event::ExtCall {
                        f: *f,
                        rip,
                        next_rip: next,
                    });
                }
                if let Some(ev) = self.exec_ext_native(*f) {
                    return ExecResult::Event(ev);
                }
            }
            Ret => {
                let rsp = self.gpr[Gpr::RSP.0 as usize];
                let ra = mem_try!(self.mem.read_u64(rsp));
                self.gpr[Gpr::RSP.0 as usize] = rsp.wrapping_add(8);
                self.rip = ra;
                return self.retired_jump();
            }
            Push { src } => {
                let rsp = self.gpr[Gpr::RSP.0 as usize].wrapping_sub(8);
                mem_try!(self.mem.write_u64(rsp, self.gpr[src.0 as usize]));
                self.gpr[Gpr::RSP.0 as usize] = rsp;
            }
            Pop { dst } => {
                let rsp = self.gpr[Gpr::RSP.0 as usize];
                let v = mem_try!(self.mem.read_u64(rsp));
                self.gpr[dst.0 as usize] = v;
                self.gpr[Gpr::RSP.0 as usize] = rsp.wrapping_add(8);
            }
        }
        self.rip = next;
        ExecResult::Retired
    }

    fn retired_jump(&mut self) -> ExecResult {
        ExecResult::Retired
    }

    fn alu(&mut self, op: AluOp, dst: Gpr, b: u64) {
        let a = self.gpr[dst.0 as usize];
        let r = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 63),
            AluOp::Shr => a.wrapping_shr(b as u32 & 63),
            AluOp::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::IMul => (a as i64).wrapping_mul(b as i64) as u64,
        };
        self.gpr[dst.0 as usize] = r;
        if matches!(op, AluOp::Sub) {
            self.rflags.set_int_compare(a, b);
        } else {
            self.rflags.set_logic(r);
        }
    }

    fn fp_bin(
        &mut self,
        f: fn(f64, f64) -> (f64, FpFlags),
        dst: Xmm,
        src: &XM,
        rip: u64,
        next: u64,
    ) -> ExecResult {
        let a = f64::from_bits(self.xmm[dst.0 as usize][0]);
        let b = match self.read_xm64(src) {
            Ok(v) => f64::from_bits(v),
            Err(fault) => return ExecResult::Event(Event::Fault(Fault::Mem(fault, rip))),
        };
        let (v, flags) = f(a, b);
        self.fp_retire(dst, v.to_bits(), flags, rip, next)
    }

    fn fp_packed(
        &mut self,
        f: fn(f64, f64) -> (f64, FpFlags),
        dst: Xmm,
        src: &XM,
        rip: u64,
        next: u64,
    ) -> ExecResult {
        let a = self.xmm[dst.0 as usize];
        let b = match self.read_xm128(src) {
            Ok(v) => v,
            Err(fault) => return ExecResult::Event(Event::Fault(Fault::Mem(fault, rip))),
        };
        let (v0, f0) = f(f64::from_bits(a[0]), f64::from_bits(b[0]));
        let (v1, f1) = f(f64::from_bits(a[1]), f64::from_bits(b[1]));
        let flags = f0 | f1;
        self.mxcsr.raise(flags);
        if !self.mxcsr.unmasked(flags).is_empty() {
            // No partial writeback: the whole instruction faults.
            return ExecResult::Event(Event::FpException { rip, flags });
        }
        self.xmm[dst.0 as usize] = [v0.to_bits(), v1.to_bits()];
        self.rip = next;
        ExecResult::Retired
    }

    fn fp_retire(
        &mut self,
        dst: Xmm,
        bits: u64,
        flags: FpFlags,
        rip: u64,
        next: u64,
    ) -> ExecResult {
        self.mxcsr.raise(flags);
        if !self.mxcsr.unmasked(flags).is_empty() {
            return ExecResult::Event(Event::FpException { rip, flags });
        }
        self.xmm[dst.0 as usize][0] = bits;
        self.rip = next;
        ExecResult::Retired
    }
}

pub(crate) enum ExecResult {
    Retired,
    Event(Event),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn run_asm(build: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        let ev = m.run(1_000_000);
        assert_eq!(ev, Event::Halted, "program must halt cleanly");
        m
    }

    fn xmm0(m: &Machine) -> f64 {
        f64::from_bits(m.xmm[0][0])
    }

    #[test]
    fn basic_arithmetic() {
        let m = run_asm(|a| {
            let c1 = a.f64m(1.5);
            let c2 = a.f64m(2.25);
            a.movsd(Xmm(0), c1);
            a.movsd(Xmm(1), c2);
            a.addsd(Xmm(0), Xmm(1)); // 3.75
            a.mulsd(Xmm(0), Xmm(1)); // 8.4375
        });
        assert_eq!(xmm0(&m), 8.4375);
        assert_eq!(m.fp_icount, 2);
    }

    #[test]
    fn masked_flags_are_sticky() {
        let m = run_asm(|a| {
            let c1 = a.f64m(0.1);
            let c2 = a.f64m(0.2);
            a.movsd(Xmm(0), c1);
            a.addsd(Xmm(0), c2);
        });
        assert_eq!(xmm0(&m), 0.1 + 0.2);
        assert!(m.mxcsr.flags().contains(FpFlags::INEXACT));
    }

    #[test]
    fn unmasked_inexact_faults_before_retirement() {
        let mut a = Asm::new();
        let c1 = a.f64m(0.1);
        let c2 = a.f64m(0.2);
        a.movsd(Xmm(0), c1);
        let fault_site = a.here();
        a.addsd(Xmm(0), c2);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.mxcsr.unmask_all();
        let ev = m.run(100);
        match ev {
            Event::FpException { rip, flags } => {
                assert_eq!(rip, fault_site, "rip points at the faulting inst");
                assert!(flags.contains(FpFlags::INEXACT));
            }
            other => panic!("expected FpException, got {other:?}"),
        }
        // Result NOT written: xmm0 still holds 0.1.
        assert_eq!(xmm0(&m), 0.1);
        // Sticky flag set even though it faulted.
        assert!(m.mxcsr.flags().contains(FpFlags::INEXACT));
    }

    #[test]
    fn exact_ops_never_fault_even_unmasked() {
        let mut a = Asm::new();
        let c1 = a.f64m(1.5);
        let c2 = a.f64m(0.25);
        a.movsd(Xmm(0), c1);
        a.addsd(Xmm(0), c2); // 1.75 exact
        a.mulsd(Xmm(0), c2); // 0.4375 exact
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.mxcsr.unmask_all();
        assert_eq!(m.run(100), Event::Halted);
        assert_eq!(xmm0(&m), 0.4375);
    }

    #[test]
    fn snan_traps_on_consume_not_on_move() {
        // The NaN-boxing contract: moves carry boxes freely; arithmetic
        // consuming one faults with IE.
        let snan_bits = fpvm_nanbox::encode(fpvm_nanbox::ShadowKey::new(77).unwrap());
        let mut a = Asm::new();
        let boxed = a.f64m(f64::from_bits(snan_bits));
        let g = a.global_f64("slot", 0.0);
        let one = a.f64m(1.0);
        a.movsd(Xmm(0), boxed); // move: no fault
        a.movsd(Mem::abs(g as i64), Xmm(0)); // store: no fault
        a.movsd(Xmm(1), Mem::abs(g as i64)); // reload: no fault
        a.addsd(Xmm(1), one); // consume: IE fault
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.mxcsr.unmask_all();
        match m.run(100) {
            Event::FpException { flags, .. } => {
                assert!(flags.contains(FpFlags::INVALID));
            }
            other => panic!("expected IE fault, got {other:?}"),
        }
        // The box arrived intact in xmm1.
        assert_eq!(m.xmm[1][0], snan_bits);
    }

    #[test]
    fn bitwise_holes_do_not_trap() {
        // xorpd sign-flip on a NaN-box: corrupts silently, never faults —
        // the §4.2 hazard.
        let snan_bits = fpvm_nanbox::encode(fpvm_nanbox::ShadowKey::new(5).unwrap());
        let mut a = Asm::new();
        let boxed = a.f64m(f64::from_bits(snan_bits));
        let mask = a.u128c([fpvm_nanbox::F64_SIGN_BIT, 0]);
        a.movsd(Xmm(0), boxed);
        a.xorpd(Xmm(0), Mem::abs(mask as i64));
        a.movq_xg(Gpr::RAX, Xmm(0)); // leak to integer world: no fault
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.mxcsr.unmask_all();
        assert_eq!(m.run(100), Event::Halted);
        assert_eq!(m.gpr[0], snan_bits | fpvm_nanbox::F64_SIGN_BIT);
    }

    #[test]
    fn control_flow_and_stack() {
        // Sum 1..=10 with a loop and a helper function.
        let m = run_asm(|a| {
            let body = a.label();
            let done = a.label();
            let func = a.label();
            a.mov_ri(Gpr::RCX, 1); // i
            a.mov_ri(Gpr::RAX, 0); // sum
            a.bind(body);
            a.cmp_ri(Gpr::RCX, 10);
            a.jcc(Cond::G, done);
            a.call(func);
            a.alu_ri(AluOp::Add, Gpr::RCX, 1);
            a.jmp(body);
            a.bind(func);
            a.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
            a.ret();
            a.bind(done);
        });
        assert_eq!(m.gpr[0], 55);
    }

    #[test]
    fn compare_and_branch_fp() {
        let m = run_asm(|a| {
            let c1 = a.f64m(1.0);
            let c2 = a.f64m(2.0);
            let less = a.label();
            let end = a.label();
            a.movsd(Xmm(0), c1);
            a.movsd(Xmm(1), c2);
            a.ucomisd(Xmm(0), Xmm(1));
            a.jcc(Cond::B, less);
            a.mov_ri(Gpr::RAX, 0);
            a.jmp(end);
            a.bind(less);
            a.mov_ri(Gpr::RAX, 1);
            a.bind(end);
        });
        assert_eq!(m.gpr[0], 1, "1.0 < 2.0");
    }

    #[test]
    fn ext_calls_native_and_output() {
        let m = run_asm(|a| {
            let c = a.f64m(0.5);
            a.movsd(Xmm(0), c);
            a.call_ext(ExtFn::Sin);
            a.call_ext(ExtFn::PrintF64);
            a.mov_ri(Gpr::RDI, 42);
            a.call_ext(ExtFn::PrintI64);
        });
        assert_eq!(
            m.output,
            vec![
                OutputEvent::F64(0.5f64.sin().to_bits()),
                OutputEvent::I64(42)
            ]
        );
    }

    #[test]
    fn hooked_ext_calls_surface() {
        let mut a = Asm::new();
        let c = a.f64m(0.5);
        a.movsd(Xmm(0), c);
        a.call_ext(ExtFn::Sin);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.hook_ext = true;
        match m.run(100) {
            Event::ExtCall { f, next_rip, .. } => {
                assert_eq!(f, ExtFn::Sin);
                // Runtime responsibility: execute + resume.
                m.exec_ext_native(f);
                m.rip = next_rip;
            }
            other => panic!("expected ExtCall, got {other:?}"),
        }
        assert_eq!(m.run(100), Event::Halted);
        assert_eq!(xmm0(&m), 0.5f64.sin());
    }

    #[test]
    fn packed_ops_and_lanes() {
        let m = run_asm(|a| {
            let pair = a.u128c([1.5f64.to_bits(), 2.5f64.to_bits()]);
            let pair2 = a.u128c([10.0f64.to_bits(), 20.0f64.to_bits()]);
            a.movapd(Xmm(0), Mem::abs(pair as i64));
            a.emit(Inst::AddPd {
                dst: Xmm(0),
                src: XM::Mem(Mem::abs(pair2 as i64)),
            });
        });
        assert_eq!(f64::from_bits(m.xmm[0][0]), 11.5);
        assert_eq!(f64::from_bits(m.xmm[0][1]), 22.5);
    }

    #[test]
    fn alloc_heap_service() {
        let m = run_asm(|a| {
            a.mov_ri(Gpr::RDI, 256);
            a.call_ext(ExtFn::AllocHeap);
            a.mov_rr(Gpr::RBX, Gpr::RAX);
            a.mov_ri(Gpr::RDX, 7);
            a.store(Mem::base_disp(Gpr::RBX, 0), Gpr::RDX);
            a.load(Gpr::RSI, Mem::base_disp(Gpr::RBX, 0));
        });
        assert!(m.gpr[Gpr::RBX.0 as usize] >= crate::mem::HEAP_BASE);
        assert_eq!(m.gpr[Gpr::RSI.0 as usize], 7);
    }

    #[test]
    fn faults_detected() {
        // Null access.
        let mut a = Asm::new();
        a.load(Gpr::RAX, Mem::abs(0));
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        assert!(matches!(
            m.run(10),
            Event::Fault(Fault::Mem(MemFault::NullGuard(0), _))
        ));
        // Runaway loop hits budget.
        let mut a = Asm::new();
        let top = a.here_label();
        a.jmp(top);
        let p = a.finish();
        m.load_program(&p);
        assert_eq!(m.run(1000), Event::Fault(Fault::Budget));
    }

    #[test]
    fn cycles_accumulate() {
        let m = run_asm(|a| {
            let c = a.f64m(3.0);
            a.movsd(Xmm(0), c);
            a.divsd(Xmm(0), c);
        });
        assert!(m.cycles >= 20, "divsd alone costs 20+; got {}", m.cycles);
        assert!(m.icount >= 2, "movsd + divsd retired");
    }

    #[test]
    fn exec_masked_reexecution() {
        // Simulates the correctness-trap path: execute an instruction
        // out-of-band with exceptions masked, collect the postcondition.
        let mut a = Asm::new();
        let c = a.f64m(0.1);
        a.movsd(Xmm(0), c);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m.mxcsr.unmask_all();
        assert_eq!(m.run(10), Event::Halted);
        m.xmm[1][0] = 0.2f64.to_bits();
        let inst = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        };
        let raised = m.exec_masked(&inst, m.rip).unwrap();
        assert!(raised.contains(FpFlags::INEXACT));
        assert_eq!(xmm0(&m), 0.1 + 0.2);
        // Masks restored to unmasked-all.
        assert_eq!(m.mxcsr.masks(), FpFlags::NONE);
    }

    #[test]
    fn patching_mid_instruction_invalidates_overlapping_predecode() {
        // Regression: patch_code used to clear only predecode slots
        // *inside* the patched byte range, so an instruction starting
        // before the range but spanning into it kept serving its stale
        // decode. Patch one byte in the middle of a mov's immediate and
        // make sure the re-run sees the new value.
        use crate::encode::encode;
        let mut a = Asm::new();
        a.mov_ri(Gpr::RAX, 0x1122_3344);
        a.halt();
        let p = a.finish();

        let old_imm = 0x1122_3344i64;
        let new_imm = 0x1122_3345i64;
        let mut old_b = Vec::new();
        encode(
            &Inst::MovRI {
                dst: Gpr::RAX,
                imm: old_imm,
            },
            &mut old_b,
        );
        let mut new_b = Vec::new();
        encode(
            &Inst::MovRI {
                dst: Gpr::RAX,
                imm: new_imm,
            },
            &mut new_b,
        );
        assert_eq!(old_b.len(), new_b.len());
        let d = old_b.iter().zip(&new_b).position(|(x, y)| x != y).unwrap();
        assert!(d > 0, "the patch must start strictly mid-instruction");

        for sb in [false, true] {
            let mut m = Machine::new(CostModel::r815());
            m.superblocks = sb;
            m.load_program(&p);
            assert_eq!(m.run(100), Event::Halted);
            assert_eq!(m.gpr[Gpr::RAX.0 as usize], old_imm as u64);
            m.patch_code(CODE_BASE + d as u64, &new_b[d..]);
            m.rip = CODE_BASE;
            assert_eq!(m.run(100), Event::Halted);
            assert_eq!(
                m.gpr[Gpr::RAX.0 as usize],
                new_imm as u64,
                "stale decode served after mid-instruction patch (superblocks={sb})"
            );
        }
    }
}
