//! Two-pass assembler with labels, a constant pool, and named globals.
//!
//! All workloads (fpvm-workloads) and the IR code generator (fpvm-ir) emit
//! programs through this interface; the output is a [`Program`] image —
//! encoded code bytes plus an initialized data segment — which is what the
//! static analyzer and binary patcher operate on, exactly as the paper's
//! pipeline operates on unmodified application binaries.

use crate::encode::encode;
use crate::isa::*;
use crate::mem::{CODE_BASE, DATA_BASE};
use std::collections::HashMap;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// An assembled program image.
#[derive(Debug, Clone)]
pub struct Program {
    /// Encoded instruction bytes (loaded at [`CODE_BASE`]).
    pub code: Vec<u8>,
    /// Initialized data segment (loaded at [`DATA_BASE`]).
    pub data: Vec<u8>,
    /// Entry point address.
    pub entry: u64,
    /// Named global addresses (for tests and analysis reports).
    pub symbols: HashMap<String, u64>,
    /// Data-segment object extents `(base, size)` for named globals and
    /// arrays — the allocation-site table the static analysis uses as
    /// abstract locations (angr-VSA's a-locs).
    pub objects: Vec<(u64, u64)>,
}

impl Program {
    /// Disassemble the code segment (address, instruction, length).
    pub fn disassemble(&self) -> Vec<(u64, Inst, usize)> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < self.code.len() {
            match crate::encode::decode(&self.code, pos) {
                Ok((inst, len)) => {
                    out.push((CODE_BASE + pos as u64, inst, len));
                    pos += len;
                }
                Err(_) => break,
            }
        }
        out
    }
}

/// The assembler.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<u8>,
    labels: Vec<Option<u64>>,
    /// (position of rel32 within code, address of following instruction, label)
    fixups: Vec<(usize, u64, Label)>,
    data: Vec<u8>,
    f64_pool: HashMap<u64, u64>,
    symbols: HashMap<String, u64>,
    objects: Vec<(u64, u64)>,
}

impl Asm {
    /// New, empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current code address.
    pub fn here(&self) -> u64 {
        CODE_BASE + self.code.len() as u64
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.here());
    }

    /// Create a label bound to the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emit a non-branch instruction.
    pub fn emit(&mut self, inst: Inst) {
        debug_assert!(!matches!(
            inst,
            Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. }
        ));
        encode(&inst, &mut self.code);
    }

    fn emit_branch(&mut self, inst: Inst, target: Label) {
        encode(&inst, &mut self.code);
        // rel32 is always the last four bytes of a branch encoding.
        let rel_pos = self.code.len() - 4;
        self.fixups.push((rel_pos, self.here(), target));
    }

    // ---- data segment ------------------------------------------------------

    /// Intern an f64 constant in the pool; returns its absolute address.
    pub fn f64c(&mut self, v: f64) -> u64 {
        let bits = v.to_bits();
        if let Some(&addr) = self.f64_pool.get(&bits) {
            return addr;
        }
        let addr = self.alloc_data(&bits.to_le_bytes(), 8);
        self.f64_pool.insert(bits, addr);
        addr
    }

    /// Intern an f64 constant, returned as a memory operand.
    pub fn f64m(&mut self, v: f64) -> Mem {
        Mem::abs(self.f64c(v) as i64)
    }

    /// Intern a 128-bit constant (for `xorpd`/`andpd` masks).
    pub fn u128c(&mut self, lanes: [u64; 2]) -> u64 {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&lanes[0].to_le_bytes());
        bytes[8..].copy_from_slice(&lanes[1].to_le_bytes());
        self.alloc_data(&bytes, 16)
    }

    /// Reserve a zero-initialized named global of `size` bytes (8-aligned).
    pub fn global(&mut self, name: &str, size: usize) -> u64 {
        let addr = self.alloc_data(&vec![0u8; size], 8);
        self.symbols.insert(name.to_string(), addr);
        self.objects.push((addr, size as u64));
        addr
    }

    /// A named global f64 with an initial value.
    pub fn global_f64(&mut self, name: &str, init: f64) -> u64 {
        let addr = self.alloc_data(&init.to_bits().to_le_bytes(), 8);
        self.symbols.insert(name.to_string(), addr);
        self.objects.push((addr, 8));
        addr
    }

    /// An initialized f64 array in the data segment; returns its address.
    pub fn f64_array(&mut self, name: &str, vals: &[f64]) -> u64 {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let addr = self.alloc_data(&bytes, 8);
        self.symbols.insert(name.to_string(), addr);
        self.objects.push((addr, 8 * vals.len() as u64));
        addr
    }

    /// An initialized i64 array in the data segment; returns its address.
    pub fn i64_array(&mut self, name: &str, vals: &[i64]) -> u64 {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let addr = self.alloc_data(&bytes, 8);
        self.symbols.insert(name.to_string(), addr);
        self.objects.push((addr, 8 * vals.len() as u64));
        addr
    }

    fn alloc_data(&mut self, bytes: &[u8], align: usize) -> u64 {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    // ---- instruction helpers (thin wrappers over `emit`) -------------------

    /// movsd dst, src.
    pub fn movsd(&mut self, dst: impl Into<XM>, src: impl Into<XM>) {
        self.emit(Inst::MovSd {
            dst: dst.into(),
            src: src.into(),
        });
    }
    /// movapd dst, src.
    pub fn movapd(&mut self, dst: impl Into<XM>, src: impl Into<XM>) {
        self.emit(Inst::MovApd {
            dst: dst.into(),
            src: src.into(),
        });
    }
    /// addsd dst, src.
    pub fn addsd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::AddSd {
            dst,
            src: src.into(),
        });
    }
    /// subsd dst, src.
    pub fn subsd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::SubSd {
            dst,
            src: src.into(),
        });
    }
    /// mulsd dst, src.
    pub fn mulsd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::MulSd {
            dst,
            src: src.into(),
        });
    }
    /// divsd dst, src.
    pub fn divsd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::DivSd {
            dst,
            src: src.into(),
        });
    }
    /// minsd dst, src.
    pub fn minsd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::MinSd {
            dst,
            src: src.into(),
        });
    }
    /// maxsd dst, src.
    pub fn maxsd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::MaxSd {
            dst,
            src: src.into(),
        });
    }
    /// sqrtsd dst, src.
    pub fn sqrtsd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::SqrtSd {
            dst,
            src: src.into(),
        });
    }
    /// xorpd dst, src.
    pub fn xorpd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::XorPd {
            dst,
            src: src.into(),
        });
    }
    /// andpd dst, src.
    pub fn andpd(&mut self, dst: Xmm, src: impl Into<XM>) {
        self.emit(Inst::AndPd {
            dst,
            src: src.into(),
        });
    }
    /// ucomisd a, b.
    pub fn ucomisd(&mut self, a: Xmm, b: impl Into<XM>) {
        self.emit(Inst::UComISd { a, b: b.into() });
    }
    /// comisd a, b.
    pub fn comisd(&mut self, a: Xmm, b: impl Into<XM>) {
        self.emit(Inst::ComISd { a, b: b.into() });
    }
    /// cvtsi2sd dst, src (64-bit source).
    pub fn cvtsi2sd(&mut self, dst: Xmm, src: impl Into<RM>) {
        self.emit(Inst::CvtSi2Sd {
            dst,
            src: src.into(),
            w: Width::W64,
        });
    }
    /// cvttsd2si dst, src (64-bit destination).
    pub fn cvttsd2si(&mut self, dst: Gpr, src: impl Into<XM>) {
        self.emit(Inst::CvtTSd2Si {
            dst,
            src: src.into(),
            w: Width::W64,
        });
    }
    /// movq r64, xmm.
    pub fn movq_xg(&mut self, dst: Gpr, src: Xmm) {
        self.emit(Inst::MovQXG { dst, src });
    }
    /// movq xmm, r64.
    pub fn movq_gx(&mut self, dst: Xmm, src: Gpr) {
        self.emit(Inst::MovQGX { dst, src });
    }
    /// mov dst, src (registers).
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.emit(Inst::MovRR { dst, src });
    }
    /// mov dst, imm.
    pub fn mov_ri(&mut self, dst: Gpr, imm: i64) {
        self.emit(Inst::MovRI { dst, imm });
    }
    /// 64-bit load.
    pub fn load(&mut self, dst: Gpr, addr: Mem) {
        self.emit(Inst::Load {
            dst,
            addr,
            w: Width::W64,
        });
    }
    /// Load with explicit width.
    pub fn load_w(&mut self, dst: Gpr, addr: Mem, w: Width) {
        self.emit(Inst::Load { dst, addr, w });
    }
    /// 64-bit store.
    pub fn store(&mut self, addr: Mem, src: Gpr) {
        self.emit(Inst::Store {
            addr,
            src,
            w: Width::W64,
        });
    }
    /// lea.
    pub fn lea(&mut self, dst: Gpr, addr: Mem) {
        self.emit(Inst::Lea { dst, addr });
    }
    /// ALU reg, reg.
    pub fn alu_rr(&mut self, op: AluOp, dst: Gpr, src: Gpr) {
        self.emit(Inst::AluRR { op, dst, src });
    }
    /// ALU reg, imm.
    pub fn alu_ri(&mut self, op: AluOp, dst: Gpr, imm: i64) {
        self.emit(Inst::AluRI { op, dst, imm });
    }
    /// cmp reg, reg.
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.emit(Inst::CmpRR { a, b });
    }
    /// cmp reg, imm.
    pub fn cmp_ri(&mut self, a: Gpr, imm: i64) {
        self.emit(Inst::CmpRI { a, imm });
    }
    /// test reg, reg.
    pub fn test_rr(&mut self, a: Gpr, b: Gpr) {
        self.emit(Inst::TestRR { a, b });
    }
    /// jmp label.
    pub fn jmp(&mut self, l: Label) {
        self.emit_branch(Inst::Jmp { rel: 0 }, l);
    }
    /// jcc label.
    pub fn jcc(&mut self, cond: Cond, l: Label) {
        self.emit_branch(Inst::Jcc { cond, rel: 0 }, l);
    }
    /// call label.
    pub fn call(&mut self, l: Label) {
        self.emit_branch(Inst::Call { rel: 0 }, l);
    }
    /// call external function.
    pub fn call_ext(&mut self, f: ExtFn) {
        self.emit(Inst::CallExt { f });
    }
    /// ret.
    pub fn ret(&mut self) {
        self.emit(Inst::Ret);
    }
    /// push reg.
    pub fn push(&mut self, src: Gpr) {
        self.emit(Inst::Push { src });
    }
    /// pop reg.
    pub fn pop(&mut self, dst: Gpr) {
        self.emit(Inst::Pop { dst });
    }
    /// halt.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// Finish assembly: resolve fixups and produce the [`Program`].
    pub fn finish(mut self) -> Program {
        for (rel_pos, next_addr, label) in &self.fixups {
            let target = self.labels[label.0].expect("unbound label at finish");
            let rel = i32::try_from(target as i64 - *next_addr as i64)
                .expect("branch out of rel32 range");
            self.code[*rel_pos..rel_pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        Program {
            code: self.code,
            data: self.data,
            entry: CODE_BASE,
            symbols: self.symbols,
            objects: self.objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.here_label();
        let end = a.label();
        a.mov_ri(Gpr::RAX, 1);
        a.jcc(Cond::E, end);
        a.jmp(top);
        a.bind(end);
        a.halt();
        let p = a.finish();
        let dis = p.disassemble();
        // Find the two branches and verify targets.
        let mut targets = Vec::new();
        for (addr, inst, len) in &dis {
            match inst {
                Inst::Jcc { rel, .. } | Inst::Jmp { rel } => {
                    targets.push(
                        addr.wrapping_add(*len as u64)
                            .wrapping_add(i64::from(*rel) as u64),
                    );
                }
                _ => {}
            }
        }
        let halt_addr = dis
            .iter()
            .find(|(_, i, _)| matches!(i, Inst::Halt))
            .unwrap()
            .0;
        assert_eq!(targets, vec![halt_addr, CODE_BASE]);
    }

    #[test]
    fn constant_pool_interns() {
        let mut a = Asm::new();
        let c1 = a.f64c(1.5);
        let c2 = a.f64c(1.5);
        let c3 = a.f64c(2.5);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        a.halt();
        let p = a.finish();
        let off = (c1 - DATA_BASE) as usize;
        let bits = u64::from_le_bytes(p.data[off..off + 8].try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 1.5);
    }

    #[test]
    fn globals_and_arrays() {
        let mut a = Asm::new();
        let g = a.global_f64("x", 3.25);
        let arr = a.f64_array("v", &[1.0, 2.0, 3.0]);
        a.halt();
        let p = a.finish();
        assert_eq!(p.symbols["x"], g);
        assert_eq!(p.symbols["v"], arr);
        let off = (arr - DATA_BASE) as usize;
        let second = u64::from_le_bytes(p.data[off + 8..off + 16].try_into().unwrap());
        assert_eq!(f64::from_bits(second), 2.0);
    }

    #[test]
    fn disassemble_roundtrip() {
        let mut a = Asm::new();
        let c = a.f64m(0.5);
        a.movsd(Xmm(0), c);
        a.addsd(Xmm(0), Xmm(0));
        a.sqrtsd(Xmm(1), Xmm(0));
        a.halt();
        let p = a.finish();
        let dis = p.disassemble();
        assert_eq!(dis.len(), 4);
        assert!(matches!(dis[1].1, Inst::AddSd { .. }));
        assert!(matches!(dis[3].1, Inst::Halt));
    }
}
