//! NaN-boxing of shadow-value pointers into IEEE 754 doubles (FPVM §2, Fig. 2).
//!
//! FPVM tracks values that have been *promoted* into an alternative arithmetic
//! system by replacing the original `f64` with a **signaling NaN** whose
//! payload encodes a pointer (here: an arena key) to the *shadow value*. The
//! hardware can be configured to fault whenever a signaling NaN is consumed,
//! so shadowed values are tracked through the program's own dataflow at zero
//! cost until they are actually used.
//!
//! Bit layout of a 64-bit IEEE double (MSB first):
//!
//! ```text
//!   63   62........52  51  50........................0
//!  [ s ][ exponent   ][ q ][          payload          ]
//! ```
//!
//! * A value is a NaN iff `exponent == 0x7FF` and `(q, payload) != 0`.
//! * The quiet bit `q` (mantissa bit 51) distinguishes quiet (`q = 1`) from
//!   signaling (`q = 0`) NaNs on x64 and every other relevant platform.
//! * A **signaling** NaN therefore must have `q = 0` and `payload != 0`
//!   (otherwise the encoding would be ±infinity), leaving exactly 2^51 − 1
//!   usable payloads per sign — the paper's "51 bits of extra information".
//!
//! FPVM *owns* the entire signaling-NaN space (the paper's "NaN-space
//! ownership" limitation): a program running under FPVM never observes a
//! signaling NaN of its own. A signaling NaN whose key is not live in the
//! shadow arena is treated as a *universal NaN* (e.g. the result of `0/0`,
//! which is not a real number in any arithmetic system); that policy is
//! implemented by the runtime, not here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Exponent field mask for `f64`.
pub const F64_EXP_MASK: u64 = 0x7FF0_0000_0000_0000;
/// Quiet-NaN bit (mantissa bit 51) for `f64`.
pub const F64_QUIET_BIT: u64 = 0x0008_0000_0000_0000;
/// Payload mask (mantissa bits 50..0) for `f64`.
pub const F64_PAYLOAD_MASK: u64 = 0x0007_FFFF_FFFF_FFFF;
/// Sign bit for `f64`.
pub const F64_SIGN_BIT: u64 = 0x8000_0000_0000_0000;

/// Maximum encodable shadow key: 2^51 − 1 (payload must be nonzero).
pub const MAX_KEY: u64 = F64_PAYLOAD_MASK;

/// A key identifying a shadow value in the alternative arithmetic system's
/// arena. Keys are nonzero and at most [`MAX_KEY`].
///
/// The paper encodes a user-space *pointer* (< 48 bits on Linux) directly;
/// we encode an arena slot key, which the paper's footnote 4 explicitly
/// sanctions ("the 51 bits could simply be used as a key to a hash lookup
/// scheme instead of directly as a pointer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShadowKey(u64);

impl ShadowKey {
    /// Create a key. Returns `None` if `raw` is zero or exceeds [`MAX_KEY`].
    #[inline]
    pub fn new(raw: u64) -> Option<Self> {
        if raw == 0 || raw > MAX_KEY {
            None
        } else {
            Some(ShadowKey(raw))
        }
    }

    /// The raw 51-bit key value (always nonzero).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Classification of a 64-bit pattern as seen by FPVM (Fig. 2's decode step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpClass {
    /// ±0.
    Zero,
    /// Subnormal (denormal) finite value.
    Subnormal,
    /// Normal finite value.
    Normal,
    /// ±∞.
    Infinite,
    /// Quiet NaN — produced by ordinary IEEE hardware; *not* owned by FPVM.
    QuietNan,
    /// Signaling NaN — owned by FPVM; carries a shadow key.
    Boxed(ShadowKey),
}

/// Classify raw `f64` bits.
#[inline]
pub fn classify(bits: u64) -> FpClass {
    let exp = bits & F64_EXP_MASK;
    let mantissa = bits & (F64_QUIET_BIT | F64_PAYLOAD_MASK);
    if exp != F64_EXP_MASK {
        if exp == 0 {
            if mantissa == 0 {
                FpClass::Zero
            } else {
                FpClass::Subnormal
            }
        } else {
            FpClass::Normal
        }
    } else if mantissa == 0 {
        FpClass::Infinite
    } else if bits & F64_QUIET_BIT != 0 {
        FpClass::QuietNan
    } else {
        // Signaling NaN: quiet bit clear, payload necessarily nonzero.
        FpClass::Boxed(ShadowKey(bits & F64_PAYLOAD_MASK))
    }
}

/// Encode a shadow key as a signaling NaN (Fig. 2's encode step).
///
/// The sign bit is left clear; [`decode`] tolerates either sign so that a
/// stray `xorpd` sign flip (one of the paper's non-trapping hazards) corrupts
/// nothing *if* the runtime still gets a chance to see the value — the static
/// analysis exists precisely to guarantee that chance.
#[inline]
pub fn encode(key: ShadowKey) -> u64 {
    F64_EXP_MASK | key.0
}

/// Encode a shadow key directly as an `f64`.
#[inline]
pub fn encode_f64(key: ShadowKey) -> f64 {
    f64::from_bits(encode(key))
}

/// Decode raw bits into a shadow key, if the bits are a signaling NaN.
#[inline]
pub fn decode(bits: u64) -> Option<ShadowKey> {
    match classify(bits) {
        FpClass::Boxed(k) => Some(k),
        _ => None,
    }
}

/// Decode an `f64` into a shadow key, if it is a signaling NaN.
#[inline]
pub fn decode_f64(x: f64) -> Option<ShadowKey> {
    decode(x.to_bits())
}

/// Returns true if the bit pattern is a NaN-box (signaling NaN) owned by FPVM.
#[inline]
pub fn is_boxed(bits: u64) -> bool {
    decode(bits).is_some()
}

/// 32-bit NaN-boxing — included to demonstrate the paper's "float problem"
/// limitation: an `f32` mantissa has only 23 bits, so after reserving the
/// quiet bit just 2^22 − 1 keys remain, "likely to be insufficient" for a
/// shadow arena of any real program.
pub mod f32box {
    /// Exponent mask for `f32`.
    pub const F32_EXP_MASK: u32 = 0x7F80_0000;
    /// Quiet bit (mantissa bit 22) for `f32`.
    pub const F32_QUIET_BIT: u32 = 0x0040_0000;
    /// Payload mask (mantissa bits 21..0) for `f32`.
    pub const F32_PAYLOAD_MASK: u32 = 0x003F_FFFF;
    /// Maximum encodable 22-bit key.
    pub const MAX_KEY32: u32 = F32_PAYLOAD_MASK;

    /// Encode a small key into an `f32` signaling NaN. `None` if the key is
    /// zero or does not fit in 22 bits — the float problem in action.
    #[inline]
    pub fn encode32(key: u32) -> Option<u32> {
        if key == 0 || key > MAX_KEY32 {
            None
        } else {
            Some(F32_EXP_MASK | key)
        }
    }

    /// Decode an `f32` bit pattern into a key, if it is a signaling NaN.
    #[inline]
    pub fn decode32(bits: u32) -> Option<u32> {
        let exp = bits & F32_EXP_MASK;
        let mant = bits & (F32_QUIET_BIT | F32_PAYLOAD_MASK);
        if exp == F32_EXP_MASK && mant != 0 && bits & F32_QUIET_BIT == 0 {
            Some(bits & F32_PAYLOAD_MASK)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bounds() {
        assert!(ShadowKey::new(0).is_none());
        assert!(ShadowKey::new(1).is_some());
        assert!(ShadowKey::new(MAX_KEY).is_some());
        assert!(ShadowKey::new(MAX_KEY + 1).is_none());
        assert!(ShadowKey::new(u64::MAX).is_none());
    }

    #[test]
    fn roundtrip_simple() {
        for raw in [1u64, 2, 42, 0xDEAD_BEEF, MAX_KEY] {
            let k = ShadowKey::new(raw).unwrap();
            assert_eq!(decode(encode(k)), Some(k));
        }
    }

    #[test]
    fn boxed_is_snan() {
        // The host hardware must agree that a boxed value is a NaN, and that
        // consuming it in arithmetic produces a NaN (quieted).
        let k = ShadowKey::new(0x1234).unwrap();
        let x = encode_f64(k);
        assert!(x.is_nan());
        let y = x + 1.0;
        assert!(y.is_nan());
        // After passing through an arithmetic op the NaN is quieted: it no
        // longer decodes as a box. This is why every *consuming* instruction
        // must trap (or be patched) before the hardware quiets it.
        assert_eq!(decode_f64(y), None);
    }

    #[test]
    fn ordinary_values_never_decode() {
        for x in [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            f64::INFINITY,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
            4.9e-324, // smallest subnormal
        ] {
            assert_eq!(decode_f64(x), None, "{x:?} decoded as a box");
        }
        // The default quiet NaN must not decode.
        assert_eq!(decode_f64(f64::NAN), None);
        // 0.0/0.0 produces a quiet NaN on the host.
        let z: f64 = 0.0;
        assert_eq!(decode_f64(z / z), None);
    }

    #[test]
    fn classify_taxonomy() {
        assert_eq!(classify(0), FpClass::Zero);
        assert_eq!(classify(F64_SIGN_BIT), FpClass::Zero);
        assert_eq!(classify(1), FpClass::Subnormal);
        assert_eq!(classify(1.0f64.to_bits()), FpClass::Normal);
        assert_eq!(classify(f64::INFINITY.to_bits()), FpClass::Infinite);
        assert_eq!(classify(f64::NEG_INFINITY.to_bits()), FpClass::Infinite);
        assert_eq!(classify(f64::NAN.to_bits()), FpClass::QuietNan);
        let k = ShadowKey::new(7).unwrap();
        assert_eq!(classify(encode(k)), FpClass::Boxed(k));
    }

    #[test]
    fn sign_flip_tolerated_on_decode() {
        // xorpd with the sign mask (compiler idiom for negation) flips bit 63.
        let k = ShadowKey::new(0xABCDE).unwrap();
        let flipped = encode(k) ^ F64_SIGN_BIT;
        assert_eq!(decode(flipped), Some(k));
    }

    #[test]
    fn float_problem() {
        use f32box::*;
        // 22-bit keys fit ...
        assert!(encode32(1).is_some());
        assert!(encode32(MAX_KEY32).is_some());
        // ... but a key space sized for a real program does not.
        assert!(encode32(MAX_KEY32 + 1).is_none());
        assert!(encode32(1 << 30).is_none());
        // Roundtrip what does fit.
        assert_eq!(decode32(encode32(0x2ABCD).unwrap()), Some(0x2ABCD));
        // Host agreement that it is a NaN.
        assert!(f32::from_bits(encode32(5).unwrap()).is_nan());
    }
}
