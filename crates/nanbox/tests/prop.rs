//! Property tests for NaN-box encoding (FPVM §2 / Fig. 2 invariants).

use fpvm_nanbox::*;
use proptest::prelude::*;

proptest! {
    /// Every valid key round-trips through encode/decode.
    #[test]
    fn roundtrip(raw in 1u64..=MAX_KEY) {
        let k = ShadowKey::new(raw).unwrap();
        prop_assert_eq!(decode(encode(k)), Some(k));
        prop_assert_eq!(decode_f64(encode_f64(k)), Some(k));
    }

    /// Every encoded box is a NaN according to the host hardware.
    #[test]
    fn boxed_is_host_nan(raw in 1u64..=MAX_KEY) {
        let k = ShadowKey::new(raw).unwrap();
        prop_assert!(encode_f64(k).is_nan());
    }

    /// No finite or infinite double ever decodes as a box (no collisions
    /// between the program's real values and FPVM's shadowed values).
    #[test]
    fn no_collision_with_reals(bits in any::<u64>()) {
        let x = f64::from_bits(bits);
        if !x.is_nan() {
            prop_assert_eq!(decode(bits), None);
        }
    }

    /// Quiet NaNs (quiet bit set) never decode as boxes.
    #[test]
    fn quiet_nans_not_owned(payload in 0u64..=F64_PAYLOAD_MASK, sign in any::<bool>()) {
        let bits = F64_EXP_MASK | F64_QUIET_BIT | payload
            | if sign { F64_SIGN_BIT } else { 0 };
        prop_assert_eq!(decode(bits), None);
        prop_assert_eq!(classify(bits), FpClass::QuietNan);
    }

    /// classify() partitions the full 2^64 space with no panics, and Boxed
    /// appears exactly when decode() succeeds.
    #[test]
    fn classify_consistent(bits in any::<u64>()) {
        let c = classify(bits);
        match c {
            FpClass::Boxed(k) => prop_assert_eq!(decode(bits), Some(k)),
            _ => prop_assert_eq!(decode(bits), None),
        }
        // Class agrees with host predicates.
        let x = f64::from_bits(bits);
        match c {
            FpClass::Zero => prop_assert!(x == 0.0),
            FpClass::Subnormal => prop_assert!(x.is_subnormal()),
            FpClass::Normal => prop_assert!(x.is_normal()),
            FpClass::Infinite => prop_assert!(x.is_infinite()),
            FpClass::QuietNan | FpClass::Boxed(_) => prop_assert!(x.is_nan()),
        }
    }

    /// Host arithmetic quiets any signaling NaN: a box that flows through an
    /// untrapped arithmetic instruction is lost. (This is the hardware
    /// behavior the whole trap-and-emulate design leans on.)
    #[test]
    fn arithmetic_quiets(raw in 1u64..=MAX_KEY, y in any::<f64>()) {
        let x = encode_f64(ShadowKey::new(raw).unwrap());
        let sum = x + y;
        prop_assert!(sum.is_nan());
        prop_assert_eq!(decode_f64(sum), None);
    }
}
