//! Randomized tests for NaN-box encoding (FPVM §2 / Fig. 2 invariants),
//! driven by a deterministic SplitMix64 generator (the build environment
//! has no proptest).

use fpvm_nanbox::*;

/// SplitMix64: tiny, deterministic, well-distributed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn key(&mut self) -> u64 {
        1 + self.next() % MAX_KEY
    }
}

const CASES: usize = 4096;

/// Every valid key round-trips through encode/decode.
#[test]
fn roundtrip() {
    let mut rng = Rng(1);
    for raw in (1..=MAX_KEY)
        .take(1000)
        .chain((0..CASES).map(|_| rng.key()))
    {
        let k = ShadowKey::new(raw).unwrap();
        assert_eq!(decode(encode(k)), Some(k));
        assert_eq!(decode_f64(encode_f64(k)), Some(k));
    }
    let k = ShadowKey::new(MAX_KEY).unwrap();
    assert_eq!(decode(encode(k)), Some(k));
}

/// Every encoded box is a NaN according to the host hardware.
#[test]
fn boxed_is_host_nan() {
    let mut rng = Rng(2);
    for _ in 0..CASES {
        let k = ShadowKey::new(rng.key()).unwrap();
        assert!(encode_f64(k).is_nan());
    }
}

/// No finite or infinite double ever decodes as a box (no collisions
/// between the program's real values and FPVM's shadowed values).
#[test]
fn no_collision_with_reals() {
    let mut rng = Rng(3);
    for _ in 0..CASES {
        let bits = rng.next();
        let x = f64::from_bits(bits);
        if !x.is_nan() {
            assert_eq!(decode(bits), None, "bits {bits:#018x}");
        }
    }
}

/// Quiet NaNs (quiet bit set) never decode as boxes.
#[test]
fn quiet_nans_not_owned() {
    let mut rng = Rng(4);
    for _ in 0..CASES {
        let payload = rng.next() & F64_PAYLOAD_MASK;
        let sign = if rng.next() & 1 == 1 { F64_SIGN_BIT } else { 0 };
        let bits = F64_EXP_MASK | F64_QUIET_BIT | payload | sign;
        assert_eq!(decode(bits), None);
        assert_eq!(classify(bits), FpClass::QuietNan);
    }
}

/// classify() partitions the full 2^64 space with no panics, and Boxed
/// appears exactly when decode() succeeds.
#[test]
fn classify_consistent() {
    let mut rng = Rng(5);
    for _ in 0..CASES {
        let bits = rng.next();
        let c = classify(bits);
        match c {
            FpClass::Boxed(k) => assert_eq!(decode(bits), Some(k)),
            _ => assert_eq!(decode(bits), None),
        }
        // Class agrees with host predicates.
        let x = f64::from_bits(bits);
        match c {
            FpClass::Zero => assert!(x == 0.0),
            FpClass::Subnormal => assert!(x.is_subnormal()),
            FpClass::Normal => assert!(x.is_normal()),
            FpClass::Infinite => assert!(x.is_infinite()),
            FpClass::QuietNan | FpClass::Boxed(_) => assert!(x.is_nan()),
        }
    }
}

/// Host arithmetic quiets any signaling NaN: a box that flows through an
/// untrapped arithmetic instruction is lost. (This is the hardware
/// behavior the whole trap-and-emulate design leans on.)
#[test]
fn arithmetic_quiets() {
    let mut rng = Rng(6);
    for _ in 0..CASES {
        let x = encode_f64(ShadowKey::new(rng.key()).unwrap());
        let y = f64::from_bits(rng.next());
        let sum = x + y;
        assert!(sum.is_nan());
        assert_eq!(decode_f64(sum), None);
    }
}
